"""Experiment sweeps: run tracker x workload grids with result caching.

Every figure in the paper's evaluation is a sweep of (tracker
configuration) x (36 workloads), aggregated per suite with geometric
means. :class:`ExperimentRunner` executes those grids, caching each
(config, tracker, workload) run as JSON on disk so the many benchmark
targets that share runs (e.g. Figure 5's Hydra column and Figure 6's
distribution) pay for each simulation once.

Grids are engine-agnostic: ``SystemConfig.engine`` selects the
memory-controller engine (fast in-order vs queued FR-FCFS) for every
cell, and a per-column override rides in the spec string
(``hydra@engine=queued``) — both are part of the cache key, so fast
and queued results share one cache directory without ever being
served for each other.

Grid cells are independent deterministic simulations, so
``run_grid``/``compare`` can fan them out across a process pool: pass
``jobs=N`` (or ``jobs=0`` for one worker per CPU), or set the
``REPRO_JOBS`` environment variable to change the default for every
sweep. Parallel results are identical to serial ones — each worker
rebuilds the same seeded trace and tracker from the picklable
(config, tracker name, workload name) spec — and the disk cache uses
atomic writes (see :mod:`repro.sim.cache`) so concurrent workers and
even concurrent benchmark processes can share one cache directory.

Set ``REPRO_CACHE_DIR`` to relocate the cache; delete it to force
re-simulation.

Provenance: when a manifest destination is configured (an explicit
``manifest_path``, ``$REPRO_MANIFEST``, or — with ``REPRO_OBS=1`` — a
``manifest.jsonl`` next to the cache), every ``run_grid`` appends one
JSON-lines :class:`~repro.obs.manifest.ManifestRecord` per cell:
canonical spec, cache key, engine, cache hit or not, wall time,
throughput. ``hydra-sim report --manifest`` summarizes the log.
"""

from __future__ import annotations

import hashlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.manifest import (
    ManifestRecord,
    ManifestWriter,
    make_record,
    resolve_manifest_path,
)
from repro.sim.cache import ResultCache
from repro.sim.config import (
    CACHE_ENV_VAR,  # noqa: F401  (re-exported; historically lived here)
    SystemConfig,
    default_cache_dir,
    resolve_jobs,
)
from repro.sim.grid import GridSpec
from repro.sim.results import (
    Comparison,  # noqa: F401  (re-exported for established importers)
    ComparisonResult,
    GridResult,
    RunResult,
    geometric_mean,  # noqa: F401  (re-exported for established importers)
)
from repro.sim.simulator import simulate_workload, trace_for_workload
from repro.trackers.registry import canonical_spec
from repro.workloads.characteristics import all_names
from repro.workloads.streaming import TraceSource

#: Bump to invalidate cached results when the model changes materially.
MODEL_VERSION = "v1"


def cell_key(
    config: SystemConfig, tracker_name: str, workload_name: str
) -> str:
    """Stable cache key of one grid cell (shared with pool workers).

    Tracker specs are canonicalized first, so spelling variants of one
    configuration (``hydra@trh=250, rcc_ways=8`` vs
    ``hydra@rcc_ways=8,trh=250``) share a cache entry — and invalid
    specs fail fast here, before any work is fanned out. The engine
    participates twice: via ``config.cache_key()`` and via any
    ``engine=`` spec override, so fast and queued results never share
    a key.
    """
    spec = canonical_spec(tracker_name)
    raw = f"{MODEL_VERSION}|{config.cache_key()}|{spec}|{workload_name}"
    return hashlib.sha256(raw.encode()).hexdigest()[:24]


def _run_cell(
    config: SystemConfig,
    tracker_name: str,
    workload_name: str,
    cache_dir: Optional[str],
) -> Tuple[Dict[str, Any], bool, float]:
    """Pool-worker work unit: one cell, through the shared disk cache.

    Returns ``(payload, from_cache, wall_s)`` where ``payload`` is the
    :class:`RunResult` as a plain dict (cheap to pickle back) and
    ``wall_s`` the wall-clock seconds the cell cost this worker. The
    worker fills the disk cache itself so a crash of the parent loses
    no completed work, and racing fills of one key are harmless: the
    simulation is deterministic and the cache write is atomic.
    """
    started = time.perf_counter()
    cache = ResultCache(Path(cache_dir)) if cache_dir else None
    key = cell_key(config, tracker_name, workload_name)
    if cache is not None:
        payload = _validated_payload(cache, key)
        if payload is not None:
            return payload, True, time.perf_counter() - started
    result = simulate_workload(config, tracker_name, workload_name)
    payload = result.to_dict()
    if cache is not None:
        cache.store(key, payload)
    return payload, False, time.perf_counter() - started


def _validated_payload(
    cache: ResultCache, key: str
) -> Optional[Dict[str, Any]]:
    """Load a payload that round-trips into a RunResult, else evict."""
    payload = cache.load(key)
    if payload is None:
        return None
    try:
        RunResult.from_dict(payload)
    except (TypeError, KeyError):
        cache._evict(cache.path_for(key))
        return None
    return payload


class SweepProgress:
    """Per-grid progress/throughput report (cells, hits, sims/sec).

    Writes carriage-return-updated status lines to ``stream`` while a
    sweep runs and one final summary line when it finishes. Enabled
    explicitly, or automatically for multi-cell grids on a terminal.
    """

    def __init__(
        self,
        total: int,
        enabled: Optional[bool] = None,
        stream=None,
        label: str = "sweep",
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = total > 1 and getattr(
                self.stream, "isatty", lambda: False
            )()
        self.enabled = enabled
        self.total = total
        self.label = label
        self.done = 0
        self.cache_hits = 0
        self._start = time.monotonic()

    @property
    def simulations(self) -> int:
        return self.done - self.cache_hits

    def sims_per_second(self) -> float:
        elapsed = max(time.monotonic() - self._start, 1e-9)
        return self.simulations / elapsed

    def record(self, from_cache: bool) -> None:
        self.done += 1
        if from_cache:
            self.cache_hits += 1
        if self.enabled:
            self.stream.write("\r" + self._status() + " ")
            self.stream.flush()

    def finish(self) -> None:
        if self.enabled and self.done:
            self.stream.write("\r" + self._status() + "\n")
            self.stream.flush()

    def _status(self) -> str:
        return (
            f"[{self.label}] {self.done}/{self.total} cells"
            f" | {self.cache_hits} cache hits"
            f" | {self.sims_per_second():.2f} sims/s"
        )


class ExperimentRunner:
    """Runs and caches (config, tracker, workload) simulations."""

    def __init__(
        self,
        config: SystemConfig,
        cache_dir: Optional[Path] = None,
        use_disk_cache: bool = True,
        jobs: Optional[int] = None,
        manifest_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.config = config
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.use_disk_cache = use_disk_cache
        #: Default parallelism for grids run through this runner
        #: (``None`` defers to ``REPRO_JOBS``, then serial).
        self.jobs = jobs
        #: Where ``run_grid`` appends per-cell provenance records, or
        #: ``None`` for no manifest (explicit arg > ``$REPRO_MANIFEST``
        #: > cache-adjacent default when observability is on).
        self.manifest_path = resolve_manifest_path(
            manifest_path, self.cache_dir
        )
        self.cache = ResultCache(self.cache_dir)
        self._results: Dict[str, RunResult] = {}
        #: Job id stamped onto manifest records of the current grid
        #: ("" outside the sweep service).
        self._manifest_job_id = ""

    # ------------------------------------------------------------------

    def trace_for(self, workload_name: str) -> TraceSource:
        return trace_for_workload(self.config, workload_name)

    def run(self, tracker_name: str, workload_name: str) -> RunResult:
        """One simulation, via the in-memory and on-disk caches."""
        key = self._key(tracker_name, workload_name)
        result = self._results.get(key)
        if result is not None:
            return result
        result = self._load(key)
        if result is None:
            result = simulate_workload(
                self.config, tracker_name, workload_name
            )
            self._store(key, result)
        self._results[key] = result
        return result

    def _coerce_grid(
        self,
        grid: Union[GridSpec, Sequence[str]],
        workload_names: Optional[Sequence[str]],
    ) -> GridSpec:
        """Normalize the grid argument to a GridSpec against this
        runner's config.

        The positional ``(tracker_names, workload_names)`` form is the
        deprecated shim: it builds the same GridSpec the blessed call
        would pass. A GridSpec carrying its *own* config must agree
        with the runner's — cache keys are computed from the runner's
        config, and silently honouring a different one would mislabel
        every cell.
        """
        if isinstance(grid, GridSpec):
            if workload_names is not None:
                raise ValueError(
                    "pass a GridSpec alone, not together with"
                    " workload_names"
                )
            if grid.config is not None and grid.config != self.config:
                raise ValueError(
                    "GridSpec.config disagrees with this runner's"
                    " config; build the runner from the grid's config"
                    " (repro.api.sweep does) or drop the grid's"
                )
            return grid.with_config(self.config)
        return GridSpec.coerce(grid, workload_names, config=self.config)

    def run_grid(
        self,
        tracker_names: Union[GridSpec, Sequence[str]],
        workload_names: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
        progress: Optional[bool] = None,
        job_id: str = "",
    ) -> GridResult:
        """tracker -> workload -> RunResult for the whole grid.

        The blessed argument is a :class:`~repro.sim.grid.GridSpec`;
        the legacy positional ``(tracker_names, workload_names)`` form
        is kept as a thin deprecated shim that builds the equivalent
        GridSpec.

        Returns a :class:`~repro.sim.results.GridResult` — dict-style
        access is unchanged, with ``.comparisons()``/``.slowdowns()``/
        ``.geomean()``/``.to_table()`` on top.

        ``jobs`` > 1 fans uncached cells out over a process pool
        (``jobs=0`` = one worker per CPU; ``None`` defers to the
        runner's default, then ``REPRO_JOBS``, then serial). Results
        are identical to a serial run. ``progress`` forces the
        cells/hits/throughput report on or off (default: on when
        stderr is a terminal). When the runner has a
        ``manifest_path``, one provenance record per cell is appended
        after the grid completes; ``job_id`` stamps those records
        (the sweep service passes its job id here).
        """
        spec = self._coerce_grid(tracker_names, workload_names)
        self._manifest_job_id = job_id
        names = spec.resolved_workloads()
        trackers = list(spec.trackers)
        n_jobs = resolve_jobs(jobs if jobs is not None else self.jobs)
        grid: Dict[str, Dict[str, RunResult]] = {t: {} for t in trackers}
        cells = [(t, w) for t in trackers for w in names]
        report = SweepProgress(total=len(cells), enabled=progress)
        records: List[ManifestRecord] = []

        pending: List[Tuple[str, str]] = []
        for tracker, wl in cells:
            started = time.perf_counter()
            key = self._key(tracker, wl)
            result = self._results.get(key)
            if result is None:
                result = self._load(key)
                if result is not None:
                    self._results[key] = result
            if result is not None:
                grid[tracker][wl] = result
                report.record(from_cache=True)
                records.append(
                    self._manifest_record(
                        tracker, wl, result, True,
                        time.perf_counter() - started,
                    )
                )
            else:
                pending.append((tracker, wl))

        if n_jobs > 1 and len(pending) > 1:
            self._run_cells_parallel(pending, grid, n_jobs, report, records)
        else:
            for tracker, wl in pending:
                started = time.perf_counter()
                result = self.run(tracker, wl)
                grid[tracker][wl] = result
                report.record(from_cache=False)
                records.append(
                    self._manifest_record(
                        tracker, wl, result, False,
                        time.perf_counter() - started,
                    )
                )
        report.finish()
        if self.manifest_path is not None and records:
            ManifestWriter(self.manifest_path).append(records)
        # Parallel cells land in completion order; normalize every
        # column to the requested workload order so iteration (and
        # everything derived from it) is deterministic.
        ordered = {
            tracker: {w: grid[tracker][w] for w in names if w in grid[tracker]}
            for tracker in trackers
        }
        return GridResult(ordered)

    def _manifest_record(
        self,
        tracker: str,
        wl: str,
        result: RunResult,
        from_cache: bool,
        wall_s: float,
    ) -> ManifestRecord:
        return make_record(
            cache_key=self._key(tracker, wl),
            spec=canonical_spec(tracker),
            workload=wl,
            engine=result.engine,
            from_cache=from_cache,
            wall_time_s=wall_s,
            requests=result.requests,
            end_time_ns=result.end_time_ns,
            job_id=self._manifest_job_id,
        )

    def _run_cells_parallel(
        self,
        pending: Sequence[Tuple[str, str]],
        grid: Dict[str, Dict[str, RunResult]],
        n_jobs: int,
        report: SweepProgress,
        records: Optional[List[ManifestRecord]] = None,
    ) -> None:
        """Fan cells out over a process pool and collect as completed."""
        cache_dir = str(self.cache_dir) if self.use_disk_cache else None
        workers = min(n_jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_cell, self.config, tracker, wl, cache_dir): (
                    tracker,
                    wl,
                )
                for tracker, wl in pending
            }
            for future in as_completed(futures):
                tracker, wl = futures[future]
                payload, from_cache, wall_s = future.result()
                result = RunResult.from_dict(payload)
                self._results[self._key(tracker, wl)] = result
                grid[tracker][wl] = result
                report.record(from_cache=from_cache)
                if records is not None:
                    records.append(
                        self._manifest_record(
                            tracker, wl, result, from_cache, wall_s
                        )
                    )

    def compare(
        self,
        tracker_name: Union[str, GridSpec],
        workload_names: Optional[Sequence[str]] = None,
        baseline_name: str = "baseline",
        jobs: Optional[int] = None,
        progress: Optional[bool] = None,
    ) -> ComparisonResult:
        """Tracked runs vs the no-tracking baseline, per workload.

        Returns a :class:`~repro.sim.results.ComparisonResult` — a
        plain list of :class:`Comparison` plus ``.geomean()``/
        ``.suite_geomeans()``/``.slowdowns()``/``.to_table()``.

        The tracked column may be named by a spec string (the legacy
        shim) or carried in a single-tracker
        :class:`~repro.sim.grid.GridSpec` (whose workload axis is then
        used). Both columns of the comparison go through
        :meth:`run_grid`, so ``jobs``/``REPRO_JOBS`` parallelism
        applies here too.
        """
        if isinstance(tracker_name, GridSpec):
            grid_spec = tracker_name
            if len(grid_spec.trackers) != 1:
                raise ValueError(
                    "compare() takes a single-tracker GridSpec; run"
                    " multi-tracker grids through run_grid()"
                )
            if workload_names is not None:
                raise ValueError(
                    "pass a GridSpec alone, not together with"
                    " workload_names"
                )
            tracker = grid_spec.trackers[0]
            names = grid_spec.resolved_workloads()
        else:
            tracker = tracker_name
            names = (
                list(workload_names) if workload_names else all_names()
            )
        grid = self.run_grid(
            [baseline_name, tracker],
            names,
            jobs=jobs,
            progress=progress,
        )
        return grid.comparisons(tracker, baseline=baseline_name)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _key(self, tracker_name: str, workload_name: str) -> str:
        return cell_key(self.config, tracker_name, workload_name)

    def _load(self, key: str) -> Optional[RunResult]:
        if not self.use_disk_cache:
            return None
        payload = _validated_payload(self.cache, key)
        if payload is None:
            return None
        return RunResult.from_dict(payload)

    def _store(self, key: str, result: RunResult) -> None:
        if not self.use_disk_cache:
            return
        self.cache.store(key, result.to_dict())


def suite_geomeans(comparisons: Iterable[Comparison]) -> Dict[str, float]:
    """Geomean normalized performance per suite (Figure 5's summary).

    Function form of :meth:`ComparisonResult.suite_geomeans`, kept for
    callers holding a plain comparison iterable.
    """
    return ComparisonResult(comparisons).suite_geomeans()


def suite_slowdowns(comparisons: Iterable[Comparison]) -> Dict[str, float]:
    """Percent slowdown per suite (Figures 7/9/10's y-axis)."""
    return ComparisonResult(comparisons).slowdowns()
