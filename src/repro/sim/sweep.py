"""Experiment sweeps: run tracker x workload grids with result caching.

Every figure in the paper's evaluation is a sweep of (tracker
configuration) x (36 workloads), aggregated per suite with geometric
means. :class:`ExperimentRunner` executes those grids, caching each
(config, tracker, workload) run as JSON on disk so the many benchmark
targets that share runs (e.g. Figure 5's Hydra column and Figure 6's
distribution) pay for each simulation once.

Set ``REPRO_CACHE_DIR`` to relocate the cache; delete it to force
re-simulation.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.config import SystemConfig
from repro.sim.results import Comparison, RunResult, geometric_mean
from repro.sim.simulator import simulate
from repro.workloads.characteristics import SUITES, all_names, workload
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.workloads.trace import Trace

#: Bump to invalidate cached results when the model changes materially.
MODEL_VERSION = "v1"

CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


class ExperimentRunner:
    """Runs and caches (config, tracker, workload) simulations."""

    def __init__(
        self,
        config: SystemConfig,
        cache_dir: Optional[Path] = None,
        use_disk_cache: bool = True,
    ) -> None:
        self.config = config
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.use_disk_cache = use_disk_cache
        self._traces: Dict[str, Trace] = {}
        self._results: Dict[str, RunResult] = {}
        self._generator = SyntheticWorkloadGenerator(config.generator_config())

    # ------------------------------------------------------------------

    def trace_for(self, workload_name: str) -> Trace:
        cached = self._traces.get(workload_name)
        if cached is None:
            cached = self._generator.generate(workload(workload_name))
            self._traces[workload_name] = cached
        return cached

    def run(self, tracker_name: str, workload_name: str) -> RunResult:
        """One simulation, via the in-memory and on-disk caches."""
        key = self._key(tracker_name, workload_name)
        result = self._results.get(key)
        if result is not None:
            return result
        result = self._load(key)
        if result is None:
            result = simulate(
                self.trace_for(workload_name), self.config, tracker_name
            )
            self._store(key, result)
        self._results[key] = result
        return result

    def run_grid(
        self,
        tracker_names: Sequence[str],
        workload_names: Optional[Sequence[str]] = None,
    ) -> Dict[str, Dict[str, RunResult]]:
        """tracker -> workload -> RunResult for the whole grid."""
        names = list(workload_names) if workload_names else all_names()
        return {
            tracker: {wl: self.run(tracker, wl) for wl in names}
            for tracker in tracker_names
        }

    def compare(
        self,
        tracker_name: str,
        workload_names: Optional[Sequence[str]] = None,
        baseline_name: str = "baseline",
    ) -> List[Comparison]:
        """Tracked runs vs the no-tracking baseline, per workload."""
        names = list(workload_names) if workload_names else all_names()
        comparisons = []
        for wl in names:
            base = self.run(baseline_name, wl)
            tracked = self.run(tracker_name, wl)
            comparisons.append(
                Comparison(
                    workload=wl,
                    tracker=tracker_name,
                    baseline_ns=base.end_time_ns,
                    tracked_ns=tracked.end_time_ns,
                )
            )
        return comparisons

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _key(self, tracker_name: str, workload_name: str) -> str:
        raw = f"{MODEL_VERSION}|{self.config.cache_key()}|{tracker_name}|{workload_name}"
        return hashlib.sha256(raw.encode()).hexdigest()[:24]

    def _load(self, key: str) -> Optional[RunResult]:
        if not self.use_disk_cache:
            return None
        path = self.cache_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            return RunResult.from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, TypeError, KeyError):
            return None

    def _store(self, key: str, result: RunResult) -> None:
        if not self.use_disk_cache:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{key}.json"
        path.write_text(json.dumps(result.to_dict()))


def suite_geomeans(comparisons: Iterable[Comparison]) -> Dict[str, float]:
    """Geomean normalized performance per suite (Figure 5's summary)."""
    by_workload = {c.workload: c.normalized_performance for c in comparisons}
    means: Dict[str, float] = {}
    for suite, members in SUITES.items():
        values = [by_workload[m] for m in members if m in by_workload]
        if values:
            means[suite] = geometric_mean(values)
    return means


def suite_slowdowns(comparisons: Iterable[Comparison]) -> Dict[str, float]:
    """Percent slowdown per suite (Figures 7/9/10's y-axis)."""
    return {
        suite: 100.0 * (1.0 / value - 1.0)
        for suite, value in suite_geomeans(comparisons).items()
    }
