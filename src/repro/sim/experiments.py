"""Named-experiment registry: the paper's evaluation as callables.

Each entry regenerates one table/figure programmatically (the
benchmarks under ``benchmarks/`` wrap the same runs with shape
assertions and timing). Exposed through ``hydra-sim experiment`` so a
single figure can be reproduced from the command line without pytest.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.sim.config import SystemConfig
from repro.sim.sweep import ExperimentRunner

ExperimentFn = Callable[[SystemConfig], dict]

_REGISTRY: Dict[str, ExperimentFn] = {}


def experiment(name: str) -> Callable[[ExperimentFn], ExperimentFn]:
    def register(fn: ExperimentFn) -> ExperimentFn:
        _REGISTRY[name] = fn
        return fn

    return register


def available_experiments() -> List[str]:
    return sorted(_REGISTRY)


def run_experiment(name: str, config: SystemConfig) -> dict:
    """Execute one named experiment; returns its payload dict."""
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        ) from None
    return fn(config)


def _tracker_sweep(
    config: SystemConfig, tracker_names: Sequence[str]
) -> dict:
    from repro import api

    payload = {}
    for tracker in tracker_names:
        comparisons = api.compare(tracker, config=config)
        payload[tracker] = {
            "per_workload": {
                c.workload: round(c.normalized_performance, 4)
                for c in comparisons
            },
            "suite_geomeans": {
                k: round(v, 4)
                for k, v in comparisons.suite_geomeans().items()
            },
            "suite_slowdowns_percent": {
                k: round(v, 3) for k, v in comparisons.slowdowns().items()
            },
        }
    return payload


@experiment("fig2")
def fig2_cra_cache_sweep(config: SystemConfig) -> dict:
    payload = {}
    for size_kb in (64, 128, 256):
        spec = f"cra@cache_kb={size_kb}"
        payload[f"cra-{size_kb}kb"] = _tracker_sweep(config, [spec])[spec]
    return payload


@experiment("fig5")
def fig5_performance(config: SystemConfig) -> dict:
    return _tracker_sweep(config, ["graphene", "cra", "hydra"])


@experiment("fig6")
def fig6_distribution(config: SystemConfig) -> dict:
    runner = ExperimentRunner(config)
    from repro.workloads.characteristics import all_names

    return {
        name: {
            k: round(v, 5)
            for k, v in runner.run("hydra", name).hydra_distribution.items()
        }
        for name in all_names()
    }


@experiment("fig7")
def fig7_trh_sensitivity(config: SystemConfig) -> dict:
    payload = {}
    for trh in (500, 250, 125):
        spec = f"hydra@trh={trh}"
        payload[str(trh)] = _tracker_sweep(config, [spec])[spec][
            "suite_slowdowns_percent"
        ]
    return payload


@experiment("fig8")
def fig8_ablation(config: SystemConfig) -> dict:
    return _tracker_sweep(config, ["hydra", "hydra-norcc", "hydra-nogct"])


@experiment("fig9")
def fig9_gct_size(config: SystemConfig) -> dict:
    payload = {}
    for entries in (16384, 32768, 65536):
        spec = f"hydra@gct_entries={entries}"
        payload[f"{entries // 1024}K"] = _tracker_sweep(config, [spec])[spec][
            "suite_slowdowns_percent"
        ]
    return payload


@experiment("fig10")
def fig10_tg(config: SystemConfig) -> dict:
    payload = {}
    for fraction in (0.50, 0.65, 0.80, 0.95):
        spec = f"hydra@tg_fraction={fraction}"
        payload[f"{int(fraction * 100)}%"] = _tracker_sweep(config, [spec])[
            spec
        ]["suite_slowdowns_percent"]
    return payload


@experiment("table1")
def table1_storage(config: SystemConfig) -> dict:
    from repro.trackers.storage import storage_table

    return {
        str(row.trh): {
            scheme: round(size / 1024, 1)
            for scheme, size in row.bytes_by_scheme.items()
        }
        for row in storage_table()
    }


@experiment("table4")
def table4_hydra_storage(config: SystemConfig) -> dict:
    from repro.core.config import HydraConfig
    from repro.core.storage import hydra_storage

    return dict(hydra_storage(HydraConfig(trh=config.trh)).rows())


@experiment("table5")
def table5_total_sram(config: SystemConfig) -> dict:
    from repro.trackers.storage import total_sram_table

    return {
        scheme: {k: round(v / 1024, 1) for k, v in cols.items()}
        for scheme, cols in total_sram_table(trh=config.trh).items()
    }


@experiment("fn4")
def fn4_randomized(config: SystemConfig) -> dict:
    return _tracker_sweep(config, ["hydra", "hydra-randomized"])


@experiment("arena")
def arena_pareto(config: SystemConfig) -> dict:
    """Tracker arena: every registered tracker raced down the T_RH
    ladder on slowdown / storage / security (see
    :mod:`repro.analysis.arena`). The config's own ``trh`` is ignored
    — the ladder spans the full range."""
    from repro.analysis.arena import run_arena

    return run_arena(config).to_dict()
