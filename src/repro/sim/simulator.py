"""End-to-end simulation runner: trace -> engine -> DRAM.

``simulate`` wires one workload trace through a memory-controller
*engine* carrying the requested tracker, and packages the outcome as a
:class:`~repro.sim.results.RunResult`. Both engines — the fast
in-order controller and the queued FR-FCFS controller — run through
this single code path (``RunSpec.build_controller`` + ``run_trace``),
so every consumer (sweeps, the result cache, benchmarks, the CLI) is
engine-agnostic: set ``SystemConfig.engine`` or put ``engine=queued``
in a tracker spec and nothing else changes.

What to run is described by a :class:`~repro.sim.spec.RunSpec` — one
immutable value object replacing the old three-way
``tracker_name``/``tracker``/``engine`` precedence rules. The legacy
keywords still work as constructors for a RunSpec, but conflicting
combinations (two ways of naming the tracker, or an ``engine=``
argument contradicting an ``engine=`` inside the spec string) now
raise instead of silently resolving.

Tracker construction is spec-driven (``make_tracker`` delegates to the
declarative registry in :mod:`repro.trackers.registry`), so sweeps and
the benchmark harness express configurations as plain strings: bare
names (``baseline``, ``hydra``, ``graphene``, ``cra``, ...) or
parameterized specs (``hydra@trh=1000,rcc_kb=28``,
``hydra@engine=queued``). Run ``repro list-trackers`` — or call
:func:`repro.trackers.registry.available_trackers` — for the full
catalogue and each tracker's parameters.

``simulate_workload`` is the self-contained (and picklable-argument)
entry point used by parallel sweeps: given only a
:class:`~repro.sim.config.SystemConfig` and two strings, it
regenerates the trace locally (memoized per process, so a pool worker
pays for each workload's trace once) and runs the simulation —
because specs are strings, parallel sweeps get parameter *and engine*
sweeps for free.

Observability: pass ``observe=True`` (or export ``REPRO_OBS=1``) and
the run carries a :class:`~repro.obs.recorder.RunObservability` on
``result.observability`` — a per-tracking-window counter series plus
an end-of-run metrics registry snapshot. Observation changes nothing
else: the serialized result is byte-identical either way (the golden
parity suite pins this).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple, Union

from repro.dram.power import DramPowerModel
from repro.interfaces import ActivationTracker
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.sim.spec import RunSpec
from repro.trackers.registry import build_tracker
from repro.workloads.characteristics import workload
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.workloads.trace import Trace

TrackerFactory = Callable[[SystemConfig], ActivationTracker]

#: Per-process trace memo keyed by (trace identity, workload name).
#: Traces are deterministic functions of both, so sharing across
#: simulations — including across the tasks a pool worker executes,
#: and across engines — is safe and saves regenerating a trace for
#: every tracker column. The memo is a bounded LRU: the cap keeps a
#: full 36-workload single-config sweep entirely resident (so pool
#: workers hit exactly as before), while a long multi-config sweep in
#: one process evicts least-recently-replayed traces instead of
#: growing without limit.
_TRACE_MEMO: "OrderedDict[Tuple[str, str], Trace]" = OrderedDict()

#: Maximum traces kept per process (> the 36-workload suite).
_TRACE_MEMO_MAX = 64


def trace_for_workload(config: SystemConfig, workload_name: str) -> Trace:
    """Generate (or recall) the trace of one workload on one system."""
    memo_key = (config.trace_key(), workload_name)
    trace = _TRACE_MEMO.get(memo_key)
    if trace is None:
        generator = SyntheticWorkloadGenerator(config.generator_config())
        trace = generator.generate(workload(workload_name))
        _TRACE_MEMO[memo_key] = trace
        if len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(memo_key)
    return trace


def simulate_workload(
    config: SystemConfig,
    spec: Union[str, RunSpec] = RunSpec(),
    workload_name: str = "GUPS",
    observe: Optional[bool] = None,
) -> "RunResult":
    """One grid cell from names alone (the parallel-sweep work unit).

    ``spec`` is a tracker spec string or a :class:`RunSpec` (strings
    keep this picklable for pool workers).
    """
    return simulate(
        trace_for_workload(config, workload_name),
        config,
        spec=spec,
        observe=observe,
    )


def make_tracker(name: str, config: SystemConfig) -> ActivationTracker:
    """Instantiate a tracker from a spec string for the given system.

    ``name`` is anything the registry accepts: a bare tracker name or
    a parameterized spec like ``hydra@trh=1000,rcc_kb=28``.
    """
    return build_tracker(name, config.tracker_context())


def simulate(
    trace: Trace,
    config: SystemConfig,
    spec: Union[None, str, RunSpec] = None,
    tracker: Optional[ActivationTracker] = None,
    engine: Optional[str] = None,
    observe: Optional[bool] = None,
    tracker_name: Optional[str] = None,
) -> RunResult:
    """Run one trace through one system configuration.

    ``spec`` (a spec string or :class:`RunSpec`) is the preferred way
    to say what runs; ``tracker=`` (a prebuilt instance) and
    ``engine=`` remain as RunSpec constructors, and conflicting
    combinations raise ``ValueError`` (see :meth:`RunSpec.coerce`).
    Engine resolution is unchanged: explicit ``engine`` argument, then
    an ``engine=`` override in the spec string, then ``config.engine``.

    ``observe=True`` attaches the observability layer (per-window
    series + metrics registry) to this run; ``None`` defers to
    ``$REPRO_OBS``. The returned result is identical either way except
    for the non-serialized ``observability`` field.
    """
    run_spec = RunSpec.coerce(
        spec=spec, tracker_name=tracker_name, tracker=tracker, engine=engine
    )
    controller = run_spec.build_controller(config)
    resolved_tracker = controller.tracker

    observation = None
    if observe is None:
        from repro.obs import obs_enabled

        observe = obs_enabled()
    if observe:
        from repro.obs import observe_controller

        observation = observe_controller(controller)

    outcome = controller.run_trace(trace, mlp=config.mlp)

    activity = controller.activity()
    power_model = DramPowerModel(config.timing)
    power = power_model.report(
        activity,
        elapsed_ns=outcome.end_time_ns,
        n_refreshes=controller.total_refreshes(),
        n_ranks=config.geometry.channels * config.geometry.ranks_per_channel,
    )
    extra: Dict[str, object] = dict(controller.result_extras())
    extra.update(resolved_tracker.extra_stats())
    observability = (
        observation.finalize(outcome.end_time_ns)
        if observation is not None
        else None
    )
    return RunResult(
        workload=trace.name,
        tracker=run_spec.result_tracker_label(resolved_tracker),
        end_time_ns=outcome.end_time_ns,
        requests=outcome.requests,
        average_latency_ns=outcome.average_latency_ns,
        demand_line_transfers=controller.stats.demand_line_transfers,
        meta_accesses=controller.stats.meta_accesses,
        meta_line_transfers=controller.stats.meta_line_transfers,
        victim_refreshes=controller.stats.victim_refreshes,
        mitigations=resolved_tracker.mitigation_count(),
        window_resets=controller.stats.window_resets,
        activations=activity.activations,
        bus_utilization=controller.bus_utilization(),
        dram_power_w=power.average_power,
        engine=controller.engine,
        observability=observability,
        extra=extra,
    )
