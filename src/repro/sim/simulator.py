"""End-to-end simulation runner: trace -> engine -> DRAM.

``simulate`` wires one workload trace through a memory-controller
*engine* carrying the requested tracker, and packages the outcome as a
:class:`~repro.sim.results.RunResult`. Both engines — the fast
in-order controller and the queued FR-FCFS controller — run through
this single code path (``build_controller`` + ``run_trace``), so
every consumer (sweeps, the result cache, benchmarks, the CLI) is
engine-agnostic: set ``SystemConfig.engine`` or put ``engine=queued``
in a tracker spec and nothing else changes.

Tracker construction is spec-driven (``make_tracker`` delegates to the
declarative registry in :mod:`repro.trackers.registry`), so sweeps and
the benchmark harness express configurations as plain strings: bare
names (``baseline``, ``hydra``, ``graphene``, ``cra``, ...) or
parameterized specs (``hydra@trh=1000,rcc_kb=28``,
``hydra@engine=queued``). Run ``repro list-trackers`` — or call
:func:`repro.trackers.registry.available_trackers` — for the full
catalogue and each tracker's parameters.

``simulate_workload`` is the self-contained (and picklable-argument)
entry point used by parallel sweeps: given only a
:class:`~repro.sim.config.SystemConfig` and two strings, it
regenerates the trace locally (memoized per process, so a pool worker
pays for each workload's trace once) and runs the simulation —
because specs are strings, parallel sweeps get parameter *and engine*
sweeps for free.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from repro.dram.power import DramPowerModel
from repro.interfaces import ActivationTracker
from repro.memctrl import build_controller, normalize_engine
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.trackers.registry import build_tracker, spec_engine
from repro.workloads.characteristics import workload
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.workloads.trace import Trace

TrackerFactory = Callable[[SystemConfig], ActivationTracker]

#: Per-process trace memo keyed by (trace identity, workload name).
#: Traces are deterministic functions of both, so sharing across
#: simulations — including across the tasks a pool worker executes,
#: and across engines — is safe and saves regenerating a trace for
#: every tracker column. The memo is a bounded LRU: the cap keeps a
#: full 36-workload single-config sweep entirely resident (so pool
#: workers hit exactly as before), while a long multi-config sweep in
#: one process evicts least-recently-replayed traces instead of
#: growing without limit.
_TRACE_MEMO: "OrderedDict[Tuple[str, str], Trace]" = OrderedDict()

#: Maximum traces kept per process (> the 36-workload suite).
_TRACE_MEMO_MAX = 64


def trace_for_workload(config: SystemConfig, workload_name: str) -> Trace:
    """Generate (or recall) the trace of one workload on one system."""
    memo_key = (config.trace_key(), workload_name)
    trace = _TRACE_MEMO.get(memo_key)
    if trace is None:
        generator = SyntheticWorkloadGenerator(config.generator_config())
        trace = generator.generate(workload(workload_name))
        _TRACE_MEMO[memo_key] = trace
        if len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(memo_key)
    return trace


def simulate_workload(
    config: SystemConfig, tracker_name: str, workload_name: str
) -> "RunResult":
    """One grid cell from names alone (the parallel-sweep work unit)."""
    return simulate(
        trace_for_workload(config, workload_name), config, tracker_name
    )


def make_tracker(name: str, config: SystemConfig) -> ActivationTracker:
    """Instantiate a tracker from a spec string for the given system.

    ``name`` is anything the registry accepts: a bare tracker name or
    a parameterized spec like ``hydra@trh=1000,rcc_kb=28``.
    """
    return build_tracker(name, config.tracker_context())


def simulate(
    trace: Trace,
    config: SystemConfig,
    tracker_name: str = "hydra",
    tracker: Optional[ActivationTracker] = None,
    engine: Optional[str] = None,
) -> RunResult:
    """Run one trace through one system configuration.

    The engine is resolved in precedence order: the explicit
    ``engine`` argument, an ``engine=`` override in the tracker spec,
    then ``config.engine``.
    """
    if engine is None:
        if tracker is None:
            engine = spec_engine(tracker_name)
        engine = engine or config.engine
    engine = normalize_engine(engine)
    if tracker is None:
        tracker = make_tracker(tracker_name, config)
    controller = build_controller(
        engine,
        geometry=config.geometry,
        timing=config.timing,
        tracker=tracker,
        blast_radius=config.blast_radius,
    )
    outcome = controller.run_trace(trace, mlp=config.mlp)

    activity = controller.activity()
    power_model = DramPowerModel(config.timing)
    power = power_model.report(
        activity,
        elapsed_ns=outcome.end_time_ns,
        n_refreshes=controller.total_refreshes(),
        n_ranks=config.geometry.channels * config.geometry.ranks_per_channel,
    )
    extra: Dict[str, object] = dict(controller.result_extras())
    extra.update(tracker.extra_stats())
    return RunResult(
        workload=trace.name,
        tracker=getattr(tracker, "name", tracker_name),
        end_time_ns=outcome.end_time_ns,
        requests=outcome.requests,
        average_latency_ns=outcome.average_latency_ns,
        demand_line_transfers=controller.stats.demand_line_transfers,
        meta_accesses=controller.stats.meta_accesses,
        meta_line_transfers=controller.stats.meta_line_transfers,
        victim_refreshes=controller.stats.victim_refreshes,
        mitigations=tracker.mitigation_count(),
        window_resets=controller.stats.window_resets,
        activations=activity.activations,
        bus_utilization=controller.bus_utilization(),
        dram_power_w=power.average_power,
        engine=engine,
        extra=extra,
    )
