"""End-to-end simulation runner: trace -> engine -> DRAM.

``simulate`` wires one workload trace through a memory-controller
*engine* carrying the requested tracker, and packages the outcome as a
:class:`~repro.sim.results.RunResult`. Both engines — the fast
in-order controller and the queued FR-FCFS controller — run through
this single code path (``RunSpec.build_controller`` + ``run_trace``),
so every consumer (sweeps, the result cache, benchmarks, the CLI) is
engine-agnostic: set ``SystemConfig.engine`` or put ``engine=queued``
in a tracker spec and nothing else changes.

What to run is described by a :class:`~repro.sim.spec.RunSpec` — one
immutable value object replacing the old three-way
``tracker_name``/``tracker``/``engine`` precedence rules. The legacy
keywords still work as constructors for a RunSpec, but conflicting
combinations (two ways of naming the tracker, or an ``engine=``
argument contradicting an ``engine=`` inside the spec string) now
raise instead of silently resolving.

Tracker construction is spec-driven (``make_tracker`` delegates to the
declarative registry in :mod:`repro.trackers.registry`), so sweeps and
the benchmark harness express configurations as plain strings: bare
names (``baseline``, ``hydra``, ``graphene``, ``cra``, ...) or
parameterized specs (``hydra@trh=1000,rcc_kb=28``,
``hydra@engine=queued``). Run ``repro list-trackers`` — or call
:func:`repro.trackers.registry.available_trackers` — for the full
catalogue and each tracker's parameters.

``simulate_workload`` is the self-contained (and picklable-argument)
entry point used by parallel sweeps: given only a
:class:`~repro.sim.config.SystemConfig` and two strings, it
regenerates the trace locally (memoized per process, so a pool worker
pays for each workload's trace once) and runs the simulation —
because specs are strings, parallel sweeps get parameter *and engine*
sweeps for free.

Traces are :class:`~repro.workloads.streaming.TraceSource`s, not
necessarily in-RAM ``Trace`` arrays. With
``SystemConfig.stream_chunk > 0`` the per-process memo caches *on-disk
chunk segments* (a spooled :class:`~repro.workloads.streaming.ChunkedTrace`
under a per-process temp directory) instead of whole arrays, so a
trace 10x the memo budget streams through either engine with peak
memory bounded by the chunk size; ``SystemConfig.trace_file`` replays
a recorded trace (chunked directory, ``.npz``, or external text)
through the same path. Results are bit-identical to the materialized
fast path (``tests/sim/test_stream_parity.py``).

Observability: pass ``observe=True`` (or export ``REPRO_OBS=1``) and
the run carries a :class:`~repro.obs.recorder.RunObservability` on
``result.observability`` — a per-tracking-window counter series plus
an end-of-run metrics registry snapshot. Observation changes nothing
else: the serialized result is byte-identical either way (the golden
parity suite pins this).
"""

from __future__ import annotations

import atexit
import hashlib
import shutil
import tempfile
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.dram.power import DramPowerModel
from repro.interfaces import ActivationTracker
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.sim.spec import RunSpec
from repro.trackers.registry import build_tracker
from repro.workloads.characteristics import workload
from repro.workloads.streaming import (
    ChunkedTrace,
    ExternalTraceReader,
    TraceChunk,
    TraceSource,
    open_trace_source,
)
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.workloads.trace import Trace

TrackerFactory = Callable[[SystemConfig], ActivationTracker]

#: Per-process trace memo keyed by (trace identity, workload name).
#: Traces are deterministic functions of both, so sharing across
#: simulations — including across the tasks a pool worker executes,
#: and across engines — is safe and saves regenerating a trace for
#: every tracker column. The memo is a bounded LRU: the cap keeps a
#: full 36-workload single-config sweep entirely resident (so pool
#: workers hit exactly as before), while a long multi-config sweep in
#: one process evicts least-recently-replayed traces instead of
#: growing without limit.
#:
#: Entries are *sources*, not necessarily arrays: a streamed workload
#: (``stream_chunk > 0``) memoizes a :class:`ChunkedTrace` whose
#: segments live on disk under the per-process spool directory — the
#: memo then costs file handles and a manifest, not gigabytes of RAM.
#: The bool records whether this process spooled the segments itself
#: (and so owns deleting them on eviction); sources opened from user
#: paths are never deleted.
_TRACE_MEMO: "OrderedDict[Tuple[str, str], Tuple[TraceSource, bool]]" = (
    OrderedDict()
)

#: Maximum traces kept per process (> the 36-workload suite).
_TRACE_MEMO_MAX = 64

#: Lazily-created per-process directory holding spooled chunk
#: segments; removed wholesale at interpreter exit.
_SPOOL_DIR: Optional[Path] = None


def _spool_dir() -> Path:
    global _SPOOL_DIR
    if _SPOOL_DIR is None:
        _SPOOL_DIR = Path(tempfile.mkdtemp(prefix="repro-trace-spool-"))
        atexit.register(shutil.rmtree, _SPOOL_DIR, ignore_errors=True)
    return _SPOOL_DIR


def _memo_evict(entry: Tuple[TraceSource, bool]) -> None:
    source, owned = entry
    if owned and isinstance(source, ChunkedTrace):
        source.delete()


def _clear_trace_memo() -> None:
    """Drop every memo entry, deleting spooled segments (tests)."""
    while _TRACE_MEMO:
        _, entry = _TRACE_MEMO.popitem(last=False)
        _memo_evict(entry)


def _build_trace_source(
    config: SystemConfig, workload_name: str, memo_key: Tuple[str, str]
) -> Tuple[TraceSource, bool]:
    """Construct the trace source one memo entry describes.

    Returns ``(source, owned)`` where ``owned`` marks spool segments
    this process wrote (and must delete on eviction).
    """
    if config.trace_file is not None:
        source = open_trace_source(
            config.trace_file, chunk_requests=config.stream_chunk
        )
        if isinstance(source, ExternalTraceReader):
            # Re-parsing text on every replay would dominate runtime;
            # spool it once into mmapped segments and stream those.
            spool = _spool_subdir(memo_key)
            return (
                ChunkedTrace.write(
                    source.chunks(),
                    spool,
                    name=source.name,
                    chunk_requests=config.stream_chunk,
                ),
                True,
            )
        return source, False
    generator = SyntheticWorkloadGenerator(config.generator_config())
    if config.stream_chunk > 0:
        spool = _spool_subdir(memo_key)
        chunk_stream = (
            TraceChunk.of(window)
            for window in generator.iter_windows(workload(workload_name))
        )
        return (
            ChunkedTrace.write(
                chunk_stream,
                spool,
                name=workload_name,
                chunk_requests=config.stream_chunk,
            ),
            True,
        )
    return generator.generate(workload(workload_name)), False


def _spool_subdir(memo_key: Tuple[str, str]) -> Path:
    digest = hashlib.sha256(repr(memo_key).encode()).hexdigest()[:16]
    path = _spool_dir() / digest
    if path.exists():  # stale segments from a dropped entry
        shutil.rmtree(path, ignore_errors=True)
    return path


def trace_for_workload(config: SystemConfig, workload_name: str) -> TraceSource:
    """Generate (or recall) the trace of one workload on one system.

    With the default config this returns the familiar in-RAM
    ``Trace``; with ``stream_chunk > 0`` it returns a spooled
    :class:`ChunkedTrace` (bounded-memory replay), and with
    ``trace_file`` set it opens/spools the recorded trace instead of
    generating synthetically. All three are memoized per process under
    ``(config.trace_key(), workload_name)`` — the streaming axis is
    part of ``trace_key``, so materialized and chunked variants of one
    workload are distinct entries.
    """
    memo_key = (config.trace_key(), workload_name)
    entry = _TRACE_MEMO.get(memo_key)
    if entry is None:
        entry = _build_trace_source(config, workload_name, memo_key)
        _TRACE_MEMO[memo_key] = entry
        if len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
            _, evicted = _TRACE_MEMO.popitem(last=False)
            _memo_evict(evicted)
    else:
        _TRACE_MEMO.move_to_end(memo_key)
    return entry[0]


def simulate_workload(
    config: SystemConfig,
    spec: Union[str, RunSpec] = RunSpec(),
    workload_name: str = "GUPS",
    observe: Optional[bool] = None,
) -> "RunResult":
    """One grid cell from names alone (the parallel-sweep work unit).

    ``spec`` is a tracker spec string or a :class:`RunSpec` (strings
    keep this picklable for pool workers). A ``stream_chunk=`` spec
    parameter (or RunSpec field) is resolved onto the config *before*
    trace construction, so per-run streaming overrides reach the memo
    and the cache key, not just the engine.
    """
    run_spec = RunSpec.coerce(spec=spec)
    config = run_spec.apply_stream_chunk(config)
    return simulate(
        trace_for_workload(config, workload_name),
        config,
        spec=run_spec,
        observe=observe,
    )


def make_tracker(name: str, config: SystemConfig) -> ActivationTracker:
    """Instantiate a tracker from a spec string for the given system.

    ``name`` is anything the registry accepts: a bare tracker name or
    a parameterized spec like ``hydra@trh=1000,rcc_kb=28``.
    """
    return build_tracker(name, config.tracker_context())


def simulate(
    trace: TraceSource,
    config: SystemConfig,
    spec: Union[None, str, RunSpec] = None,
    tracker: Optional[ActivationTracker] = None,
    engine: Optional[str] = None,
    observe: Optional[bool] = None,
    tracker_name: Optional[str] = None,
) -> RunResult:
    """Run one trace through one system configuration.

    ``trace`` is any :class:`TraceSource` — an in-RAM ``Trace``, a
    chunked on-disk trace, or an external-format reader; both engines
    consume the stream with running statistics, so the result is
    bit-identical across representations.

    ``spec`` (a spec string or :class:`RunSpec`) is the preferred way
    to say what runs; ``tracker=`` (a prebuilt instance) and
    ``engine=`` remain as RunSpec constructors, and conflicting
    combinations raise ``ValueError`` (see :meth:`RunSpec.coerce`).
    Engine resolution is unchanged: explicit ``engine`` argument, then
    an ``engine=`` override in the spec string, then ``config.engine``.

    ``observe=True`` attaches the observability layer (per-window
    series + metrics registry) to this run; ``None`` defers to
    ``$REPRO_OBS``. The returned result is identical either way except
    for the non-serialized ``observability`` field.
    """
    if tracker_name is not None:
        warnings.warn(
            "simulate(tracker_name=...) is deprecated; pass spec="
            " (a spec string or RunSpec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    run_spec = RunSpec.coerce(
        spec=spec, tracker_name=tracker_name, tracker=tracker, engine=engine
    )
    controller = run_spec.build_controller(config)
    resolved_tracker = controller.tracker

    observation = None
    if observe is None:
        from repro.obs import obs_enabled

        observe = obs_enabled()
    if observe:
        from repro.obs import observe_controller

        observation = observe_controller(controller)

    outcome = controller.run_trace(trace, mlp=config.mlp)

    activity = controller.activity()
    power_model = DramPowerModel(config.timing)
    power = power_model.report(
        activity,
        elapsed_ns=outcome.end_time_ns,
        n_refreshes=controller.total_refreshes(),
        n_ranks=config.geometry.channels * config.geometry.ranks_per_channel,
    )
    extra: Dict[str, object] = dict(controller.result_extras())
    extra.update(resolved_tracker.extra_stats())
    observability = (
        observation.finalize(outcome.end_time_ns)
        if observation is not None
        else None
    )
    return RunResult(
        workload=trace.name,
        tracker=run_spec.result_tracker_label(resolved_tracker),
        end_time_ns=outcome.end_time_ns,
        requests=outcome.requests,
        average_latency_ns=outcome.average_latency_ns,
        demand_line_transfers=controller.stats.demand_line_transfers,
        meta_accesses=controller.stats.meta_accesses,
        meta_line_transfers=controller.stats.meta_line_transfers,
        victim_refreshes=controller.stats.victim_refreshes,
        mitigations=resolved_tracker.mitigation_count(),
        window_resets=controller.stats.window_resets,
        activations=activity.activations,
        bus_utilization=controller.bus_utilization(),
        dram_power_w=power.average_power,
        engine=controller.engine,
        observability=observability,
        extra=extra,
    )
