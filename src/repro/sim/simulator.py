"""End-to-end simulation runner: trace -> core -> controller -> DRAM.

``simulate`` wires one workload trace through the limited-MLP core
model and a memory controller carrying the requested tracker, and
packages the outcome as a :class:`~repro.sim.results.RunResult`.

Tracker construction is name-driven (``make_tracker``) so sweeps and
the benchmark harness can express configurations as plain strings:
``baseline``, ``hydra``, ``hydra-nogct``, ``hydra-norcc``,
``graphene``, ``cra`` (uses the config's cache size), ``ocpr``,
``para``, ``dcbf``.

``simulate_workload`` is the self-contained (and picklable-argument)
entry point used by parallel sweeps: given only a
:class:`~repro.sim.config.SystemConfig` and two names, it regenerates
the trace locally (memoized per process, so a pool worker pays for
each workload's trace once) and runs the simulation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.hydra import HydraTracker
from repro.cpu.core import LimitedMlpCore
from repro.dram.power import DramPowerModel
from repro.interfaces import ActivationTracker, NullTracker
from repro.memctrl.controller import MemoryController
from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.trackers.cat import CatTracker
from repro.trackers.cra import CraTracker
from repro.trackers.dcbf import DcbfTracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.insecure import MrlocTracker, ProhitTracker
from repro.trackers.mithril import MithrilTracker
from repro.trackers.ocpr import OcprTracker
from repro.trackers.para import ParaTracker
from repro.trackers.twice import TwiceTracker
from repro.workloads.characteristics import workload
from repro.workloads.synthetic import SyntheticWorkloadGenerator
from repro.workloads.trace import Trace

TrackerFactory = Callable[[SystemConfig], ActivationTracker]

#: Per-process trace memo keyed by (config identity, workload name).
#: Traces are deterministic functions of both, so sharing across
#: simulations — including across the tasks a pool worker executes —
#: is safe and saves regenerating a trace for every tracker column.
_TRACE_MEMO: Dict[Tuple[str, str], Trace] = {}


def trace_for_workload(config: SystemConfig, workload_name: str) -> Trace:
    """Generate (or recall) the trace of one workload on one system."""
    memo_key = (config.cache_key(), workload_name)
    trace = _TRACE_MEMO.get(memo_key)
    if trace is None:
        generator = SyntheticWorkloadGenerator(config.generator_config())
        trace = generator.generate(workload(workload_name))
        _TRACE_MEMO[memo_key] = trace
    return trace


def simulate_workload(
    config: SystemConfig, tracker_name: str, workload_name: str
) -> "RunResult":
    """One grid cell from names alone (the parallel-sweep work unit)."""
    return simulate(
        trace_for_workload(config, workload_name), config, tracker_name
    )


def make_tracker(name: str, config: SystemConfig) -> ActivationTracker:
    """Instantiate a tracker by name for the given system."""
    if name == "baseline":
        return NullTracker()
    if name == "hydra":
        return HydraTracker(config.hydra_config())
    if name == "hydra-randomized":
        tracker = HydraTracker(config.hydra_config(randomize_mapping=True))
        tracker.name = "hydra-randomized"
        return tracker
    if name == "hydra-nogct":
        return HydraTracker(config.hydra_config(enable_gct=False))
    if name == "hydra-norcc":
        return HydraTracker(config.hydra_config(enable_rcc=False))
    if name == "graphene":
        return GrapheneTracker(
            config.geometry, trh=config.trh, timing=config.timing
        )
    if name == "cra":
        return CraTracker(
            config.geometry,
            trh=config.trh,
            cache_bytes=config.cra_cache_bytes(),
        )
    if name == "ocpr":
        return OcprTracker(config.geometry, trh=config.trh)
    if name == "cat":
        return CatTracker(
            config.geometry, trh=config.trh, timing=config.timing
        )
    if name == "twice":
        return TwiceTracker(
            config.geometry, trh=config.trh, timing=config.timing
        )
    if name == "mithril":
        return MithrilTracker(
            config.geometry, trh=config.trh, timing=config.timing
        )
    if name == "mrloc":
        return MrlocTracker()
    if name == "prohit":
        return ProhitTracker()
    if name == "para":
        return ParaTracker(trh=config.trh)
    if name == "dcbf":
        counters = max(1024, int((1 << 18) * config.scale))
        return DcbfTracker(
            trh=config.trh, counters_per_filter=counters, timing=config.timing
        )
    raise ValueError(f"unknown tracker {name!r}")


def simulate(
    trace: Trace,
    config: SystemConfig,
    tracker_name: str = "hydra",
    tracker: Optional[ActivationTracker] = None,
) -> RunResult:
    """Run one trace through one system configuration."""
    if tracker is None:
        tracker = make_tracker(tracker_name, config)
    controller = MemoryController(
        geometry=config.geometry,
        timing=config.timing,
        tracker=tracker,
        blast_radius=config.blast_radius,
    )
    core = LimitedMlpCore(mlp=config.mlp)
    outcome = core.run(trace, controller)

    activity = controller.activity()
    power_model = DramPowerModel(config.timing)
    power = power_model.report(
        activity,
        elapsed_ns=outcome.end_time_ns,
        n_refreshes=controller.total_refreshes(),
        n_ranks=config.geometry.channels * config.geometry.ranks_per_channel,
    )
    extra: Dict[str, object] = {}
    if isinstance(tracker, HydraTracker):
        extra["distribution"] = tracker.stats.distribution()
        extra["group_inits"] = tracker.stats.group_inits
        extra["rit_act_activations"] = tracker.stats.rit_act_activations
    if isinstance(tracker, CraTracker):
        total = tracker.cache.hits + tracker.cache.misses
        extra["cache_miss_rate"] = (
            tracker.cache.misses / total if total else 0.0
        )
    return RunResult(
        workload=trace.name,
        tracker=getattr(tracker, "name", tracker_name),
        end_time_ns=outcome.end_time_ns,
        requests=outcome.requests,
        average_latency_ns=outcome.average_latency_ns,
        demand_line_transfers=controller.stats.demand_line_transfers,
        meta_accesses=controller.stats.meta_accesses,
        meta_line_transfers=controller.stats.meta_line_transfers,
        victim_refreshes=controller.stats.victim_refreshes,
        mitigations=tracker.mitigation_count(),
        window_resets=controller.stats.window_resets,
        activations=activity.activations,
        bus_utilization=controller.bus_utilization(),
        dram_power_w=power.average_power,
        extra=extra,
    )
