"""Top-level system configuration (Table 2) and the scaling policy.

One :class:`SystemConfig` pins down everything an experiment needs:
the (possibly scaled) DRAM geometry and timing, the Hydra design
point, baseline tracker parameters, core-model MLP, and trace
generation settings. All the paper's experiments are expressed as
variations of this object (see ``repro.sim.sweep``).

Scaling (DESIGN.md §3): ``scale < 1`` shrinks rows-per-bank, the
tracking window, tracker structures, and workload footprints together,
preserving every ratio the results depend on. ``scale = 1`` runs the
paper's full 32 GB / 64 ms configuration.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.config import HydraConfig
from repro.dram.timing import PAPER_GEOMETRY, PAPER_TIMING, DramGeometry, DramTiming
from repro.memctrl.base import normalize_engine
from repro.trackers.registry import TrackerContext
from repro.workloads.synthetic import GeneratorConfig

#: Environment variable overriding the default experiment scale
#: (interpreted as a denominator: REPRO_SCALE=64 means scale=1/64).
SCALE_ENV_VAR = "REPRO_SCALE"
DEFAULT_SCALE_DENOMINATOR = 32

#: Environment variable setting the default sweep parallelism
#: (REPRO_JOBS=0 means one worker per CPU; unset means serial).
JOBS_ENV_VAR = "REPRO_JOBS"

#: Environment variable relocating the simulation result cache.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> "Path":
    """Result cache location: REPRO_CACHE_DIR, else ./.repro_cache."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


def default_scale() -> float:
    """Experiment scale: 1/32 by default, overridable via REPRO_SCALE."""
    denominator = int(os.environ.get(SCALE_ENV_VAR, DEFAULT_SCALE_DENOMINATOR))
    if denominator < 1:
        raise ValueError(f"{SCALE_ENV_VAR} must be >= 1")
    return 1.0 / denominator


def default_jobs() -> int:
    """Sweep worker count: REPRO_JOBS, or 1 (serial) when unset.

    ``REPRO_JOBS=0`` asks for one worker per available CPU.
    """
    env = os.environ.get(JOBS_ENV_VAR)
    if env is None or env == "":
        return 1
    return resolve_jobs(env)


def resolve_jobs(jobs) -> int:
    """Normalize a jobs request (None / int / numeric string) to >= 1.

    ``None`` means "use the environment default" (``REPRO_JOBS``, else
    serial); ``0`` means "all CPUs". Anything else must be a positive
    integer.
    """
    if jobs is None:
        return default_jobs()
    count = int(jobs)
    if count == 0:
        return os.cpu_count() or 1
    if count < 0:
        raise ValueError(f"jobs must be >= 0, got {count}")
    return count


@dataclass(frozen=True)
class SystemConfig:
    """One fully-specified experimental system."""

    #: Fraction of the paper's full-size system (1.0 = 32 GB / 64 ms).
    scale: float = 1.0
    #: RowHammer threshold being defended.
    trh: int = 500
    #: Hydra structure sizes at full scale (Figure 9 varies gct).
    gct_entries_full: int = 32768
    rcc_entries_full: int = 8192
    rcc_ways: int = 16
    tg_fraction: float = 0.80
    #: Multiplier applied to Hydra structures for low-T_RH points
    #: (Figure 7 uses 2x at 250 and 4x at 125).
    structure_scale: int = 1
    #: CRA metadata cache capacity at full scale (Figure 2 sweeps it).
    cra_cache_full_bytes: int = 64 * 1024
    #: Victim refresh blast radius (§4.7).
    blast_radius: int = 2
    #: Outstanding-request limit of the core model (calibration point:
    #: reproduces the paper's Figure 5 averages, see EXPERIMENTS.md).
    mlp: int = 16
    #: Trace shape.
    n_windows: int = 2
    chunk_lines: int = 16
    seed: int = 2022
    #: Memory-controller scheduling engine: ``"fast"`` (in-order
    #: resolution, the sweep default), ``"queued"`` (FR-FCFS read
    #: queues + watermark-drained write queue), or ``"vector"`` (numpy
    #: window-batched, bit-identical to fast; DESIGN.md §14). See
    #: :data:`repro.memctrl.ENGINES`.
    engine: str = "fast"
    #: Streaming chunk size in requests: ``0`` (default) materializes
    #: traces whole in RAM (the historical fast path); ``> 0`` streams
    #: them through on-disk chunk segments of this many requests, so
    #: peak memory is bounded by the chunk, not the trace (DESIGN.md
    #: §13). Results are bit-identical either way.
    stream_chunk: int = 0
    #: Replay a recorded trace instead of generating the synthetic
    #: workload: a chunked-trace directory, an ``.npz`` trace, or an
    #: external text trace (``<gap_ns> <R|W> <row_id> [n_lines]``).
    trace_file: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if self.structure_scale < 1:
            raise ValueError("structure_scale must be >= 1")
        if self.stream_chunk < 0:
            raise ValueError("stream_chunk must be >= 0 (0 = materialized)")
        normalize_engine(self.engine)

    # ------------------------------------------------------------------
    # Derived hardware
    # ------------------------------------------------------------------

    @property
    def geometry(self) -> DramGeometry:
        if self.scale == 1.0:
            return PAPER_GEOMETRY
        return PAPER_GEOMETRY.scaled(self.scale)

    @property
    def timing(self) -> DramTiming:
        if self.scale == 1.0:
            return PAPER_TIMING
        return PAPER_TIMING.scaled(self.scale)

    def tracker_context(self) -> TrackerContext:
        """The tracker-relevant slice of this system.

        This is what spec-built trackers are constructed from (see
        :mod:`repro.trackers.registry`); every tracker-parameter
        derivation lives on the context so spec strings and
        SystemConfig produce identical trackers.
        """
        return TrackerContext(
            geometry=self.geometry,
            timing=self.timing,
            trh=self.trh,
            scale=self.scale,
            gct_entries_full=self.gct_entries_full,
            rcc_entries_full=self.rcc_entries_full,
            rcc_ways=self.rcc_ways,
            tg_fraction=self.tg_fraction,
            structure_scale=self.structure_scale,
            cra_cache_full_bytes=self.cra_cache_full_bytes,
            blast_radius=self.blast_radius,
        )

    def hydra_config(
        self,
        enable_gct: bool = True,
        enable_rcc: bool = True,
        randomize_mapping: bool = False,
    ) -> HydraConfig:
        """The Hydra design point, scaled with the system."""
        return self.tracker_context().hydra_config(
            enable_gct=enable_gct,
            enable_rcc=enable_rcc,
            randomize_mapping=randomize_mapping,
        )

    def cra_cache_bytes(self) -> int:
        """CRA metadata cache, scaled, kept to whole 16-way sets."""
        return self.tracker_context().cra_cache_bytes()

    def generator_config(self) -> GeneratorConfig:
        return GeneratorConfig(
            geometry=self.geometry,
            timing=self.timing,
            scale=self.scale,
            n_windows=self.n_windows,
            chunk_lines=self.chunk_lines,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Experiment variations
    # ------------------------------------------------------------------

    def with_trh(self, trh: int, structure_scale: Optional[int] = None) -> "SystemConfig":
        """Retarget T_RH, scaling Hydra structures as Figure 7 does."""
        if structure_scale is None:
            structure_scale = max(1, 500 // trh)
        return replace(self, trh=trh, structure_scale=structure_scale)

    def with_gct_entries(self, gct_entries_full: int) -> "SystemConfig":
        return replace(self, gct_entries_full=gct_entries_full)

    def with_tg_fraction(self, tg_fraction: float) -> "SystemConfig":
        return replace(self, tg_fraction=tg_fraction)

    def with_cra_cache(self, full_bytes: int) -> "SystemConfig":
        return replace(self, cra_cache_full_bytes=full_bytes)

    def with_engine(self, engine: str) -> "SystemConfig":
        """The same system run on a different scheduling engine."""
        return replace(self, engine=normalize_engine(engine))

    def with_stream_chunk(self, stream_chunk: int) -> "SystemConfig":
        """The same system with a different trace-streaming chunk."""
        return replace(self, stream_chunk=stream_chunk)

    def with_trace_file(self, trace_file: Optional[str]) -> "SystemConfig":
        """The same system replaying a recorded trace file."""
        return replace(self, trace_file=trace_file)

    # ------------------------------------------------------------------
    # Serialization (the sweep service ships configs over the wire)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; every field is a primitive by construction."""
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SystemConfig":
        """Load a serialized config, dropping unknown (newer) keys."""
        known = {spec.name for spec in fields(SystemConfig)}
        return SystemConfig(
            **{k: v for k, v in data.items() if k in known}
        )

    def _stream_suffix(self) -> str:
        """Key suffix for the streaming axis (empty at the defaults).

        Appending only non-default values keeps every pre-streaming
        cache/trace key byte-identical (the golden-parity suite pins
        the strings), so existing result caches stay warm.
        """
        suffix = ""
        if self.stream_chunk:
            suffix += f"-sc{self.stream_chunk}"
        if self.trace_file:
            import zlib

            suffix += f"-tf{zlib.crc32(str(self.trace_file).encode()):08x}"
        return suffix

    def cache_key(self) -> str:
        """Stable identifier for result caching.

        The engine is part of the key, so cached results from one
        engine are never served for another (fast, queued, and vector
        each key separately — even though vector results are
        bit-identical to fast by contract). The
        streaming axis (``stream_chunk``/``trace_file``) participates
        whenever it is non-default; replayed trace files are keyed by
        path — clear the cache if a file's contents change in place.
        """
        return (
            f"s{self.scale:.6f}-t{self.trh}-g{self.gct_entries_full}"
            f"-r{self.rcc_entries_full}x{self.rcc_ways}-f{self.tg_fraction}"
            f"-x{self.structure_scale}-c{self.cra_cache_full_bytes}"
            f"-b{self.blast_radius}-m{self.mlp}-w{self.n_windows}"
            f"-k{self.chunk_lines}-e{self.seed}-n{self.engine}"
            + self._stream_suffix()
        )

    def trace_key(self) -> str:
        """Identity of the generated trace (engine/tracker agnostic).

        Only the fields trace construction consumes participate, so
        e.g. fast, queued, and vector runs of one system share a
        memoized trace instead of regenerating it per engine. The
        streaming axis is
        part of trace identity: a chunked spool and a materialized
        trace are distinct memo entries.
        """
        return (
            f"s{self.scale:.6f}-w{self.n_windows}"
            f"-k{self.chunk_lines}-e{self.seed}"
            + self._stream_suffix()
        )


def baseline_table2() -> Dict[str, str]:
    """The paper's Table 2, as data (for documentation and tests)."""
    return {
        "Cores (OoO)": "8 @ 3.2GHz",
        "ROB size": "160",
        "Fetch and Retire width": "4",
        "Last Level Cache (Shared)": "8MB, 16-Way, 64B lines",
        "Memory size": "32 GB - DDR4",
        "Memory bus speed": "1.6 GHz (3.2GHz DDR)",
        "tRCD-tRP-tCAS": "14-14-14 ns",
        "tRC and tRFC": "45ns and 350 ns",
        "Banks x Ranks x Channels": "16 x 1 x 2",
        "Size of row": "8KB",
    }
