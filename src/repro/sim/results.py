"""Result records produced by the simulation harness.

Kept deliberately plain (dataclasses of numbers and small dicts) so
they serialize cleanly to JSON for the benchmark result cache and
EXPERIMENTS.md generation.

The serialized surface is versioned (:data:`SCHEMA_VERSION`) and the
well-known ``extra`` keys are documented in
:data:`WELL_KNOWN_EXTRAS` and promoted to typed accessors — consumers
read ``result.hydra_distribution`` instead of spelunking
``result.extra["distribution"]``. ``from_dict`` stays tolerant:
pre-redesign cache payloads (no ``schema_version``) and newer
payloads with unknown keys both load.

Observability (:mod:`repro.obs`) rides on the *non-serialized*
``observability`` field: it never enters ``to_dict``/``from_dict`` or
equality, so cached payloads and golden-parity comparisons are
byte-identical whether a run was observed or not.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.workloads.characteristics import SUITES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.recorder import RunObservability, WindowSeries

#: Version of the serialized RunResult payload. Bumped by the results
#: API redesign that introduced it; loaders accept any older payload
#: (missing keys fall back to field defaults, unknown keys are
#: dropped).
SCHEMA_VERSION = 2

#: The documented ``RunResult.extra`` keys: name -> (who writes it,
#: meaning). Anything else in ``extra`` is tracker- or
#: engine-private and may change without notice.
WELL_KNOWN_EXTRAS: Dict[str, str] = {
    "distribution": "Hydra: Figure 6 fraction of activation updates"
    " per level (gct_only / rcc_hit / rct_access)",
    "group_inits": "Hydra: groups promoted to per-row tracking",
    "rit_act_activations": "Hydra: activations landing on RCT meta rows",
    "cache_miss_rate": "CRA: metadata-cache miss rate (Figure 2)",
    "total_delay_ns": "both engines: activation delay charged by"
    " rate-control trackers (D-CBF)",
    "read_queue_peak": "queued engine: deepest read queue seen",
    "write_queue_peak": "queued engine: deepest write queue seen",
    "forced_write_drains": "queued engine: high-watermark drains",
    "opportunistic_writes": "queued engine: writes bled while reads idle",
    "row_hit_first_picks": "queued engine: FR-FCFS row-hit promotions",
    "flushed_writes": "queued engine: residual writes drained at end",
    "meta_reads": "queued engine: tracker metadata reads queued",
    "meta_writes": "queued engine: tracker metadata writes queued",
}

#: Extra keys the queued scheduler owns (``scheduler_counters``).
_SCHEDULER_COUNTER_KEYS = (
    "read_queue_peak",
    "write_queue_peak",
    "forced_write_drains",
    "opportunistic_writes",
    "row_hit_first_picks",
    "flushed_writes",
    "meta_reads",
    "meta_writes",
)


@dataclass
class RunResult:
    """One (workload, tracker) simulation outcome."""

    #: Serialized-payload version (class-level: not a field, so
    #: ``to_dict`` and golden payloads are unchanged by the redesign).
    schema_version: ClassVar[int] = SCHEMA_VERSION

    workload: str
    tracker: str
    end_time_ns: float
    requests: int
    average_latency_ns: float
    demand_line_transfers: int
    meta_accesses: int
    meta_line_transfers: int
    victim_refreshes: int
    mitigations: int
    window_resets: int
    activations: int
    bus_utilization: float
    dram_power_w: float
    #: Scheduling engine that produced the run (``fast`` | ``queued``
    #: | ``vector``). Defaults to ``fast`` so pre-engine cached
    #: payloads still load.
    engine: str = "fast"
    #: Tracker- and engine-specific extras (e.g. Hydra's Figure 6
    #: distribution, the queued engine's scheduler counters). See
    #: :data:`WELL_KNOWN_EXTRAS` for the documented keys.
    extra: Dict[str, Any] = field(default_factory=dict)
    #: What an *observed* run recorded (:class:`RunObservability`);
    #: ``None`` otherwise. Excluded from serialization and equality so
    #: observing a run changes nothing downstream.
    observability: Optional["RunObservability"] = field(
        default=None, compare=False, repr=False
    )

    def to_dict(self) -> Dict[str, Any]:
        data = {
            spec.name: copy.deepcopy(getattr(self, spec.name))
            for spec in fields(self)
            if spec.name != "observability"
        }
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunResult":
        """Load a serialized payload, tolerating version drift.

        Pre-redesign payloads carry no ``schema_version`` and load
        unchanged; payloads from newer writers may carry keys this
        build does not know, which are dropped (the cache layer
        validates by round-tripping through this constructor, so a
        payload missing *required* fields is still rejected).
        """
        known = {
            spec.name for spec in fields(RunResult)
        } - {"observability"}
        payload = {k: v for k, v in data.items() if k in known}
        return RunResult(**payload)

    # -- typed accessors over well-known extras ------------------------

    @property
    def hydra_distribution(self) -> Optional[Dict[str, float]]:
        """Figure 6 update distribution (Hydra runs; else ``None``)."""
        return self.extra.get("distribution")

    @property
    def total_delay_ns(self) -> float:
        """Rate-control activation delay charged during the run."""
        return float(self.extra.get("total_delay_ns", 0.0))

    @property
    def flushed_writes(self) -> int:
        """Residual writes drained at end of trace (queued engine)."""
        return int(self.extra.get("flushed_writes", 0))

    @property
    def scheduler_counters(self) -> Dict[str, int]:
        """The queued engine's FR-FCFS counters (empty on fast runs)."""
        return {
            key: self.extra[key]
            for key in _SCHEDULER_COUNTER_KEYS
            if key in self.extra
        }

    @property
    def requests_per_sim_second(self) -> float:
        """Simulated request rate (requests per simulated second)."""
        if self.end_time_ns <= 0:
            return 0.0
        return self.requests / (self.end_time_ns * 1e-9)

    @property
    def window_series(self) -> Optional["WindowSeries"]:
        """Per-window series of an observed run (else ``None``)."""
        if self.observability is None:
            return None
        return self.observability.series


@dataclass(frozen=True)
class Comparison:
    """A tracked run against its no-tracking baseline."""

    workload: str
    tracker: str
    baseline_ns: float
    tracked_ns: float

    @property
    def normalized_performance(self) -> float:
        """Baseline time / tracked time (1.0 = no slowdown, Figure 5's y-axis)."""
        if self.tracked_ns <= 0:
            return 1.0
        return self.baseline_ns / self.tracked_ns

    @property
    def slowdown_percent(self) -> float:
        """Extra execution time in percent (Figures 7, 9, 10's y-axis)."""
        if self.baseline_ns <= 0:
            return 0.0
        return 100.0 * (self.tracked_ns / self.baseline_ns - 1.0)


def geometric_mean(values) -> float:
    """Geometric mean (the paper's aggregation for normalized perf)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of nothing")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def _suite_geomeans(
    comparisons: Sequence[Comparison],
) -> Dict[str, float]:
    by_workload = {
        c.workload: c.normalized_performance for c in comparisons
    }
    means: Dict[str, float] = {}
    for suite, members in SUITES.items():
        values = [by_workload[m] for m in members if m in by_workload]
        if values:
            means[suite] = geometric_mean(values)
    return means


class ComparisonResult(List[Comparison]):
    """What ``compare`` returns: a list of Comparison with helpers.

    Still a list (iteration, indexing, and ``len`` behave as before);
    the helpers fold the per-workload comparisons into the paper's
    aggregates so callers stop hand-rolling them.
    """

    def geomean(self) -> float:
        """Geomean normalized performance over every workload present."""
        return geometric_mean(c.normalized_performance for c in self)

    def suite_geomeans(self) -> Dict[str, float]:
        """Geomean normalized performance per suite (Figure 5)."""
        return _suite_geomeans(self)

    def slowdowns(self) -> Dict[str, float]:
        """Percent slowdown per suite (Figures 7/9/10's y-axis)."""
        return {
            suite: 100.0 * (1.0 / value - 1.0)
            for suite, value in self.suite_geomeans().items()
        }

    def to_table(self) -> str:
        """Plain-text per-workload table with a per-suite footer."""
        lines = [f"{'workload':<14} {'norm. perf':>10} {'slowdown':>9}"]
        for comp in self:
            lines.append(
                f"{comp.workload:<14} {comp.normalized_performance:>10.4f}"
                f" {comp.slowdown_percent:>8.2f}%"
            )
        lines.append("-" * 35)
        for suite, mean in self.suite_geomeans().items():
            lines.append(f"{suite:<14} {mean:>10.4f}")
        return "\n".join(lines)


class GridResult(Mapping[str, Dict[str, RunResult]]):
    """What ``run_grid`` returns: tracker -> workload -> RunResult.

    Dict-style access is preserved (``grid[tracker][workload]``,
    iteration over tracker names, ``len``, ``in``), with the
    aggregation helpers callers used to hand-roll on the nested dict.
    """

    def __init__(self, cells: Mapping[str, Mapping[str, RunResult]]) -> None:
        self._cells: Dict[str, Dict[str, RunResult]] = {
            tracker: dict(column) for tracker, column in cells.items()
        }

    # -- Mapping protocol ---------------------------------------------

    def __getitem__(self, tracker: str) -> Dict[str, RunResult]:
        return self._cells[tracker]

    def __iter__(self) -> Iterator[str]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __repr__(self) -> str:
        return (
            f"GridResult(trackers={list(self._cells)},"
            f" workloads={len(self.workloads)})"
        )

    # -- helpers -------------------------------------------------------

    @property
    def trackers(self) -> List[str]:
        return list(self._cells)

    @property
    def workloads(self) -> List[str]:
        for column in self._cells.values():
            return list(column)
        return []

    def comparisons(
        self, tracker: str, baseline: str = "baseline"
    ) -> ComparisonResult:
        """Per-workload comparison of one column against another.

        Both columns must be in the grid; workloads are compared where
        both columns have them.
        """
        tracked_column = self._cells[tracker]
        base_column = self._cells[baseline]
        return ComparisonResult(
            Comparison(
                workload=workload,
                tracker=tracker,
                baseline_ns=base_column[workload].end_time_ns,
                tracked_ns=tracked_column[workload].end_time_ns,
            )
            for workload in tracked_column
            if workload in base_column
        )

    def geomean(
        self, tracker: Optional[str] = None, baseline: str = "baseline"
    ) -> Any:
        """Geomean normalized performance vs the baseline column.

        With ``tracker`` given, one float; without, a dict for every
        non-baseline column in the grid.
        """
        if tracker is not None:
            return self.comparisons(tracker, baseline).geomean()
        return {
            name: self.comparisons(name, baseline).geomean()
            for name in self._cells
            if name != baseline
        }

    def slowdowns(
        self, baseline: str = "baseline"
    ) -> Dict[str, Dict[str, float]]:
        """Per-suite percent slowdowns for every non-baseline column."""
        return {
            name: self.comparisons(name, baseline).slowdowns()
            for name in self._cells
            if name != baseline
        }

    # -- serialization (the sweep service ships grids over HTTP) -------

    def to_payload(self) -> Dict[str, Dict[str, Dict[str, Any]]]:
        """Plain-JSON form: tracker -> workload -> RunResult payload.

        Canonical when dumped with ``sort_keys=True``: two grids with
        the same cells serialize byte-identically, which is what the
        service's resume guarantee is stated in terms of (a preempted
        and resumed job reaches the same ``GridResult`` bytes as an
        uninterrupted run).
        """
        return {
            tracker: {
                workload: result.to_dict()
                for workload, result in column.items()
            }
            for tracker, column in self._cells.items()
        }

    @staticmethod
    def from_payload(
        data: Mapping[str, Mapping[str, Dict[str, Any]]]
    ) -> "GridResult":
        return GridResult(
            {
                tracker: {
                    workload: RunResult.from_dict(payload)
                    for workload, payload in column.items()
                }
                for tracker, column in data.items()
            }
        )

    def to_table(self, attribute: str = "end_time_ns") -> str:
        """Plain-text workloads x trackers table of one result field."""
        trackers = self.trackers
        header = f"{'workload':<14}" + "".join(
            f" {tracker:>14}" for tracker in trackers
        )
        lines = [header]
        for workload in self.workloads:
            cells = []
            for tracker in trackers:
                result = self._cells[tracker].get(workload)
                if result is None:
                    cells.append(f" {'-':>14}")
                    continue
                value = getattr(result, attribute)
                cells.append(
                    f" {value:>14.4g}"
                    if isinstance(value, float)
                    else f" {value:>14}"
                )
            lines.append(f"{workload:<14}" + "".join(cells))
        return "\n".join(lines)
