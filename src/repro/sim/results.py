"""Result records produced by the simulation harness.

Kept deliberately plain (dataclasses of numbers and small dicts) so
they serialize cleanly to JSON for the benchmark result cache and
EXPERIMENTS.md generation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict


@dataclass
class RunResult:
    """One (workload, tracker) simulation outcome."""

    workload: str
    tracker: str
    end_time_ns: float
    requests: int
    average_latency_ns: float
    demand_line_transfers: int
    meta_accesses: int
    meta_line_transfers: int
    victim_refreshes: int
    mitigations: int
    window_resets: int
    activations: int
    bus_utilization: float
    dram_power_w: float
    #: Scheduling engine that produced the run (``fast`` | ``queued``).
    #: Defaults to ``fast`` so pre-engine cached payloads still load.
    engine: str = "fast"
    #: Tracker- and engine-specific extras (e.g. Hydra's Figure 6
    #: distribution, the queued engine's scheduler counters).
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunResult":
        return RunResult(**data)


@dataclass(frozen=True)
class Comparison:
    """A tracked run against its no-tracking baseline."""

    workload: str
    tracker: str
    baseline_ns: float
    tracked_ns: float

    @property
    def normalized_performance(self) -> float:
        """Baseline time / tracked time (1.0 = no slowdown, Figure 5's y-axis)."""
        if self.tracked_ns <= 0:
            return 1.0
        return self.baseline_ns / self.tracked_ns

    @property
    def slowdown_percent(self) -> float:
        """Extra execution time in percent (Figures 7, 9, 10's y-axis)."""
        if self.baseline_ns <= 0:
            return 0.0
        return 100.0 * (self.tracked_ns / self.baseline_ns - 1.0)


def geometric_mean(values) -> float:
    """Geometric mean (the paper's aggregation for normalized perf)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of nothing")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
