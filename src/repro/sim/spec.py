"""RunSpec: one value object answering "what exactly should run?".

``simulate`` historically took three overlapping knobs —
``tracker_name`` (a registry spec string), ``tracker`` (a prebuilt
instance), and ``engine`` — and resolved their conflicts silently by
precedence. :class:`RunSpec` replaces that with a single immutable
description of a run:

- ``tracker`` — a registry spec string (``hydra``,
  ``hydra@trh=1000,rcc_kb=28``, ``baseline@engine=queued``, ...);
- ``engine`` — an explicit engine override, or ``None`` to defer to
  the spec string and then the config;
- ``instance`` — a prebuilt tracker object, for callers that
  construct trackers by hand (tests, the security harness). When set,
  ``tracker`` is just its display label and is never parsed.

Conflicts now *raise* instead of resolving: naming a tracker two ways
(``tracker_name=`` and ``tracker=``) is an error, and an explicit
``engine=`` argument that contradicts an ``engine=`` parameter inside
the spec string is an error (matching values are fine). Engine
resolution otherwise keeps the established order: explicit argument,
then spec override, then ``config.engine``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.interfaces import ActivationTracker
from repro.memctrl import build_controller as _build_controller
from repro.memctrl import normalize_engine
from repro.memctrl.base import BaseMemoryController
from repro.sim.config import SystemConfig
from repro.trackers.registry import build_tracker, spec_engine, spec_stream_chunk

#: What ``simulate``/``simulate_workload`` run when told nothing else.
DEFAULT_TRACKER = "hydra"


@dataclass(frozen=True)
class RunSpec:
    """Immutable description of one simulation's tracker + engine."""

    tracker: str = DEFAULT_TRACKER
    engine: Optional[str] = None
    instance: Optional[ActivationTracker] = None
    #: Trace-streaming chunk override (requests per chunk; 0 =
    #: materialize). ``None`` defers to the spec string and then
    #: ``SystemConfig.stream_chunk`` — the same resolution order as
    #: ``engine``.
    stream_chunk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engine is not None:
            normalize_engine(self.engine)
            spec_override = self._spec_engine()
            if spec_override is not None and spec_override != self.engine:
                raise ValueError(
                    f"conflicting engines: engine={self.engine!r} but the"
                    f" spec {self.tracker!r} says engine={spec_override!r};"
                    " drop one (matching values are allowed)"
                )
        if self.stream_chunk is not None:
            if self.stream_chunk < 0:
                raise ValueError("stream_chunk must be >= 0")
            chunk_override = self._spec_stream_chunk()
            if chunk_override is not None and chunk_override != self.stream_chunk:
                raise ValueError(
                    f"conflicting stream chunks: stream_chunk="
                    f"{self.stream_chunk!r} but the spec {self.tracker!r}"
                    f" says stream_chunk={chunk_override!r}; drop one"
                    " (matching values are allowed)"
                )

    @classmethod
    def coerce(
        cls,
        spec: Union[None, str, "RunSpec"] = None,
        tracker_name: Optional[str] = None,
        tracker: Optional[ActivationTracker] = None,
        engine: Optional[str] = None,
    ) -> "RunSpec":
        """Normalize the public keyword surface into one RunSpec.

        Exactly one way of naming the tracker is accepted: a
        ready-made ``spec`` (RunSpec or spec string), a ``tracker_name``
        spec string, or a prebuilt ``tracker`` instance. Redundant or
        contradictory combinations raise ``ValueError`` — nothing is
        resolved silently.
        """
        if spec is not None:
            if tracker_name is not None or tracker is not None:
                raise ValueError(
                    "pass a RunSpec/spec string alone, not together with"
                    " tracker_name= or tracker="
                )
            if isinstance(spec, RunSpec):
                if engine is not None and spec.engine not in (None, engine):
                    raise ValueError(
                        f"conflicting engines: engine={engine!r} vs"
                        f" RunSpec.engine={spec.engine!r}"
                    )
                if engine is not None and spec.engine is None:
                    return cls(
                        tracker=spec.tracker,
                        engine=engine,
                        instance=spec.instance,
                        stream_chunk=spec.stream_chunk,
                    )
                return spec
            return cls(tracker=str(spec), engine=engine)
        if tracker is not None:
            if tracker_name is not None:
                raise ValueError(
                    "give tracker_name= (a spec string) or tracker="
                    " (an instance), not both"
                )
            label = getattr(tracker, "name", type(tracker).__name__)
            return cls(tracker=label, engine=engine, instance=tracker)
        name = tracker_name if tracker_name is not None else DEFAULT_TRACKER
        return cls(tracker=name, engine=engine)

    # ------------------------------------------------------------------

    def _spec_engine(self) -> Optional[str]:
        """The spec string's ``engine=`` override, if parseable.

        With a prebuilt ``instance`` the ``tracker`` field is a label,
        not a registry spec, so it is never parsed.
        """
        if self.instance is not None:
            return None
        return spec_engine(self.tracker)

    def resolved_engine(self, config: SystemConfig) -> str:
        """Engine for this run: explicit > spec override > config."""
        if self.engine is not None:
            return self.engine
        spec_override = self._spec_engine()
        if spec_override is not None:
            return spec_override
        return normalize_engine(config.engine)

    def _spec_stream_chunk(self) -> Optional[int]:
        """The spec string's ``stream_chunk=`` override, if parseable."""
        if self.instance is not None:
            return None
        return spec_stream_chunk(self.tracker)

    def resolved_stream_chunk(self, config: SystemConfig) -> int:
        """Streaming chunk for this run: explicit > spec > config."""
        if self.stream_chunk is not None:
            return self.stream_chunk
        chunk_override = self._spec_stream_chunk()
        if chunk_override is not None:
            return chunk_override
        return config.stream_chunk

    def apply_stream_chunk(self, config: SystemConfig) -> SystemConfig:
        """Config with this spec's streaming chunk resolved onto it.

        Used by ``simulate_workload`` before trace construction so a
        ``stream_chunk=`` spec parameter (or explicit RunSpec field)
        changes how the trace is *built*, not just how it is keyed.
        """
        resolved = self.resolved_stream_chunk(config)
        if resolved == config.stream_chunk:
            return config
        return config.with_stream_chunk(resolved)

    def build_tracker(self, config: SystemConfig) -> ActivationTracker:
        """The tracker instance this spec describes."""
        if self.instance is not None:
            return self.instance
        return build_tracker(self.tracker, config.tracker_context())

    def build_controller(
        self, config: SystemConfig, **engine_kwargs
    ) -> BaseMemoryController:
        """Construct the fully wired controller (tracker inside).

        The one construction path shared by ``simulate`` and any
        caller that wants a controller matching a spec; the built
        tracker rides on ``controller.tracker``.
        """
        return _build_controller(
            self.resolved_engine(config),
            geometry=config.geometry,
            timing=config.timing,
            tracker=self.build_tracker(config),
            blast_radius=config.blast_radius,
            **engine_kwargs,
        )

    def result_tracker_label(self, tracker: ActivationTracker) -> str:
        """Name recorded in ``RunResult.tracker``."""
        return getattr(tracker, "name", self.tracker)
