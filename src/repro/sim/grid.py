"""GridSpec: one value object answering "what grid should run?".

A sweep used to be described positionally — ``run_grid(tracker_names,
workload_names)`` against whatever config the runner happened to hold.
That shape cannot leave the process: the sweep service (DESIGN.md §15)
needs a grid that serializes, round-trips canonically, and enumerates
its own cells so a broker can shard them. :class:`GridSpec` is that
object, the grid-shaped sibling of :class:`~repro.sim.spec.RunSpec`:

- ``trackers`` — registry spec strings, canonicalized on construction
  so spelling variants of one configuration compare (and cache) equal;
- ``workloads`` — workload names, or empty for the full 36-workload
  suite (resolved lazily so the spec itself stays small);
- ``config`` — the :class:`~repro.sim.config.SystemConfig` every cell
  runs under, or ``None`` to defer to the caller's config (the
  in-process ``run_grid`` path); the service requires it.

``cells()`` yields one :class:`GridCell` per (tracker, workload) pair
in deterministic order, each carrying its content-addressed cache key,
and ``to_json``/``from_json`` round-trip the spec canonically:
``GridSpec.from_json(spec.to_json()) == spec`` and two specs naming
the same grid serialize to byte-identical JSON (``grid_key`` hashes
exactly that).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.config import SystemConfig
from repro.trackers.registry import canonical_spec
from repro.workloads.characteristics import all_names


@dataclass(frozen=True)
class GridCell:
    """One (tracker, workload) cell of a grid, with its cache key."""

    tracker: str
    workload: str
    config: SystemConfig
    #: Content-addressed cache key (:func:`repro.sim.sweep.cell_key`):
    #: identical cells — across jobs, brokers, and machines sharing a
    #: cache directory — collide here on purpose.
    key: str


@dataclass(frozen=True)
class GridSpec:
    """Immutable description of one tracker x workload sweep grid."""

    trackers: Tuple[str, ...]
    workloads: Tuple[str, ...] = ()
    config: Optional[SystemConfig] = field(default=None)

    def __post_init__(self) -> None:
        if not self.trackers:
            raise ValueError("a GridSpec needs at least one tracker spec")
        object.__setattr__(self, "trackers", tuple(self.trackers))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        # Validate eagerly: an invalid tracker spec or workload fails
        # here, before any work is enqueued or shipped to a broker.
        # Spellings are *kept* as given — GridResult columns stay
        # keyed by what the caller wrote — while ``canonical()`` /
        # ``grid_key()`` provide the normalized identity.
        for tracker in self.trackers:
            canonical_spec(tracker)
        known = set(all_names())
        for name in self.workloads:
            if name not in known:
                raise ValueError(f"unknown workload {name!r}")

    @classmethod
    def coerce(
        cls,
        trackers: Sequence[str],
        workloads: Optional[Sequence[str]] = None,
        config: Optional[SystemConfig] = None,
    ) -> "GridSpec":
        """Build a GridSpec from the legacy positional arguments."""
        return cls(
            trackers=tuple(trackers),
            workloads=tuple(workloads) if workloads else (),
            config=config,
        )

    # ------------------------------------------------------------------

    def resolved_workloads(self) -> List[str]:
        """The workload axis, with the empty default meaning all 36."""
        return list(self.workloads) if self.workloads else all_names()

    def resolved_config(
        self, fallback: Optional[SystemConfig] = None
    ) -> SystemConfig:
        """The config cells run under: own field, else ``fallback``."""
        if self.config is not None:
            return self.config
        if fallback is not None:
            return fallback
        raise ValueError(
            "this GridSpec carries no SystemConfig; attach one"
            " (with_config) or supply a fallback"
        )

    def with_config(self, config: SystemConfig) -> "GridSpec":
        """The same grid pinned to an explicit config (service path)."""
        return GridSpec(
            trackers=self.trackers, workloads=self.workloads, config=config
        )

    def canonical(self) -> "GridSpec":
        """The normalized identity of this grid.

        Tracker specs are canonicalized (stable across spacing and
        parameter ordering) and the workload default is resolved, so
        two spellings of one grid compare — and ``grid_key()`` — equal.
        """
        return GridSpec(
            trackers=tuple(canonical_spec(t) for t in self.trackers),
            workloads=tuple(self.resolved_workloads()),
            config=self.config,
        )

    def n_cells(self) -> int:
        return len(self.trackers) * len(self.resolved_workloads())

    def cells(
        self, fallback_config: Optional[SystemConfig] = None
    ) -> Iterator[GridCell]:
        """Yield every cell in deterministic tracker-major order."""
        from repro.sim.sweep import cell_key  # circular at module load

        config = self.resolved_config(fallback_config)
        for tracker in self.trackers:
            for workload in self.resolved_workloads():
                yield GridCell(
                    tracker=tracker,
                    workload=workload,
                    config=config,
                    key=cell_key(config, tracker, workload),
                )

    # ------------------------------------------------------------------
    # Canonical JSON round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "trackers": list(self.trackers),
            "workloads": list(self.workloads),
        }
        if self.config is not None:
            data["config"] = self.config.to_dict()
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "GridSpec":
        config = data.get("config")
        return GridSpec(
            trackers=tuple(data["trackers"]),
            workloads=tuple(data.get("workloads", ())),
            config=SystemConfig.from_dict(config) if config else None,
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace variance."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_json(text: str) -> "GridSpec":
        return GridSpec.from_dict(json.loads(text))

    def grid_key(self) -> str:
        """Content hash of the canonical form (job identity)."""
        return hashlib.sha256(
            self.canonical().to_json().encode()
        ).hexdigest()[:16]
