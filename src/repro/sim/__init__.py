"""Simulation harness: configs, runner, sweeps, result records."""

from repro.sim.cache import ResultCache
from repro.sim.config import (
    SystemConfig,
    baseline_table2,
    default_cache_dir,
    default_jobs,
    default_scale,
    resolve_jobs,
)
from repro.sim.grid import GridCell, GridSpec
from repro.sim.results import (
    SCHEMA_VERSION,
    WELL_KNOWN_EXTRAS,
    Comparison,
    ComparisonResult,
    GridResult,
    RunResult,
    geometric_mean,
)
from repro.sim.simulator import (
    make_tracker,
    simulate,
    simulate_workload,
    trace_for_workload,
)
from repro.sim.spec import DEFAULT_TRACKER, RunSpec
from repro.sim.sweep import (
    ExperimentRunner,
    SweepProgress,
    cell_key,
    suite_geomeans,
    suite_slowdowns,
)

__all__ = [
    "Comparison",
    "ComparisonResult",
    "DEFAULT_TRACKER",
    "ExperimentRunner",
    "GridCell",
    "GridResult",
    "GridSpec",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SCHEMA_VERSION",
    "SweepProgress",
    "SystemConfig",
    "WELL_KNOWN_EXTRAS",
    "baseline_table2",
    "cell_key",
    "default_cache_dir",
    "default_jobs",
    "default_scale",
    "geometric_mean",
    "make_tracker",
    "resolve_jobs",
    "simulate",
    "simulate_workload",
    "suite_geomeans",
    "suite_slowdowns",
    "trace_for_workload",
]
