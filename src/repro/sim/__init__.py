"""Simulation harness: configs, runner, sweeps, result records."""

from repro.sim.config import SystemConfig, baseline_table2, default_scale
from repro.sim.results import Comparison, RunResult, geometric_mean
from repro.sim.simulator import make_tracker, simulate
from repro.sim.sweep import (
    ExperimentRunner,
    suite_geomeans,
    suite_slowdowns,
)

__all__ = [
    "Comparison",
    "ExperimentRunner",
    "RunResult",
    "SystemConfig",
    "baseline_table2",
    "default_scale",
    "geometric_mean",
    "make_tracker",
    "simulate",
    "suite_geomeans",
    "suite_slowdowns",
]
