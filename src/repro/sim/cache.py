"""Crash-safe, multi-process-safe disk cache for simulation results.

One JSON file per (config, tracker, workload) key. Safety properties:

- **Atomic writes**: results are serialized to a temporary file in the
  cache directory and moved into place with :func:`os.replace`, so a
  crash mid-write can never leave a truncated entry, and a reader can
  never observe a half-written file.
- **Corrupt-entry eviction**: a file that fails to parse (e.g. left by
  a pre-atomic-write version of this cache, or by disk trouble) is
  unlinked on load so it is re-simulated once rather than failing
  every run.
- **Idempotent fills**: two processes racing to fill the same key both
  succeed — each writes its own temp file and the ``os.replace`` calls
  serialize arbitrarily. Simulation is deterministic, so whichever
  write lands last is byte-identical to the other.

This makes a single ``REPRO_CACHE_DIR`` safe to share between the
worker processes of one parallel sweep and between independent
benchmark invocations running concurrently.

Leases (the sweep service's in-flight markers): racing *fills* were
always safe, but they were also wasted work — two brokers (or two
workers of one broker) that both miss on a key would both simulate it.
:meth:`ResultCache.lease` adds a best-effort claim: an atomically
created ``<key>.lease`` file naming an owner and an expiry. A worker
that wins the lease simulates and stores; one that loses polls the
cache until the entry lands — or until the lease goes stale (its
holder crashed), at which point the lease is reclaimed instead of
wedging the grid. Leases are an *optimization*, never a correctness
gate: if the protocol ever double-grants under a pathological race,
both winners simulate the same deterministic cell and the atomic
``store`` keeps the cache consistent.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

#: How long a lease protects a key before other workers may reclaim
#: it. Generous relative to a cell simulation (seconds) so a healthy
#: worker never loses its claim, small enough that a crashed worker
#: delays a grid by at most this.
DEFAULT_LEASE_TTL_S = 300.0


@dataclass(frozen=True)
class LeaseInfo:
    """What a lease file records about its holder."""

    key: str
    owner: str
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class ResultCache:
    """Directory of ``<key>.json`` payloads with atomic replacement."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        #: Corrupt entries evicted by this process (observability).
        self.evictions = 0
        #: Payloads written by this process (the service's dedup
        #: assertions count these: a grid submitted twice must fill
        #: each unique key exactly once).
        self.stores = 0
        #: Stale leases this process reclaimed from crashed holders.
        self.leases_reclaimed = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload, or None on miss or corruption.

        A corrupt file is unlinked so the next fill replaces it.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._evict(path)
            return None
        if not isinstance(payload, dict):
            self._evict(path)
            return None
        return payload

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically publish a payload under ``key``.

        The temp file lives in the cache directory itself so the
        ``os.replace`` is a same-filesystem rename (atomic on POSIX
        and Windows).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key}.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
            self.stores += 1
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Leases: best-effort in-flight markers for racing fillers
    # ------------------------------------------------------------------

    def lease_path(self, key: str) -> Path:
        return self.directory / f"{key}.lease"

    def lease(
        self,
        key: str,
        owner: str,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        now: Optional[float] = None,
    ) -> bool:
        """Try to claim ``key`` for ``owner``; True on success.

        The claim is an ``O_CREAT | O_EXCL`` file create — atomic on
        every platform the cache's ``os.replace`` already relies on.
        An existing unexpired lease means someone else is filling the
        key (returns False); an *expired* lease is reclaimed: the
        stale file is unlinked and the create retried once. The
        unlink+create pair is not atomic, so under a pathological
        interleaving two reclaimers can both believe they won — see
        the module docstring for why that is harmless here.
        """
        clock = time.time if now is None else (lambda: now)
        self.directory.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            if self._try_create_lease(key, owner, ttl_s, clock()):
                return True
            holder = self.lease_info(key)
            if holder is None:
                continue  # holder released between our create and read
            if not holder.expired(clock()):
                return False
            # Stale: the holder crashed (or stalled past its TTL).
            # Reclaim by unlinking the stale file, then retry the
            # atomic create; a racing reclaimer may beat us to it.
            try:
                self.lease_path(key).unlink()
                self.leases_reclaimed += 1
            except OSError:
                pass
        return self._try_create_lease(key, owner, ttl_s, clock())

    def release(self, key: str, owner: str) -> None:
        """Drop ``owner``'s lease on ``key`` (a stranger's survives)."""
        info = self.lease_info(key)
        if info is None or info.owner != owner:
            return
        try:
            self.lease_path(key).unlink()
        except OSError:
            pass

    def lease_info(self, key: str) -> Optional[LeaseInfo]:
        """The current lease on ``key``, or None (corrupt = none)."""
        try:
            text = self.lease_path(key).read_text()
        except OSError:
            return None
        try:
            data = json.loads(text)
            return LeaseInfo(
                key=key,
                owner=str(data["owner"]),
                expires_at=float(data["expires_at"]),
            )
        except (ValueError, KeyError, TypeError):
            # A torn or foreign lease file: treat as absent; the
            # expiry path will clean it up.
            return None

    def _try_create_lease(
        self, key: str, owner: str, ttl_s: float, now: float
    ) -> bool:
        try:
            fd = os.open(
                self.lease_path(key),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            json.dump({"owner": owner, "expires_at": now + ttl_s}, handle)
        return True

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # a racing process may have replaced or removed it
        self.evictions += 1
