"""Crash-safe, multi-process-safe disk cache for simulation results.

One JSON file per (config, tracker, workload) key. Safety properties:

- **Atomic writes**: results are serialized to a temporary file in the
  cache directory and moved into place with :func:`os.replace`, so a
  crash mid-write can never leave a truncated entry, and a reader can
  never observe a half-written file.
- **Corrupt-entry eviction**: a file that fails to parse (e.g. left by
  a pre-atomic-write version of this cache, or by disk trouble) is
  unlinked on load so it is re-simulated once rather than failing
  every run.
- **Idempotent fills**: two processes racing to fill the same key both
  succeed — each writes its own temp file and the ``os.replace`` calls
  serialize arbitrarily. Simulation is deterministic, so whichever
  write lands last is byte-identical to the other.

This makes a single ``REPRO_CACHE_DIR`` safe to share between the
worker processes of one parallel sweep and between independent
benchmark invocations running concurrently.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional


class ResultCache:
    """Directory of ``<key>.json`` payloads with atomic replacement."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        #: Corrupt entries evicted by this process (observability).
        self.evictions = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload, or None on miss or corruption.

        A corrupt file is unlinked so the next fill replaces it.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._evict(path)
            return None
        if not isinstance(payload, dict):
            self._evict(path)
            return None
        return payload

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically publish a payload under ``key``.

        The temp file lives in the cache directory itself so the
        ``os.replace`` is a same-filesystem rename (atomic on POSIX
        and Windows).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key}.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # a racing process may have replaced or removed it
        self.evictions += 1
