"""Analytic SRAM energy/power model (paper §6.8, CACTI-flavoured).

CACTI is a large C++ cache-modeling tool; for the single conclusion
the paper draws from it — that Hydra's SRAM structures cost ~18.6 mW
(10.6 mW GCT + 8 mW RCC) at 22 nm, i.e. negligible — an analytic model
with the standard scaling shape suffices:

- leakage grows linearly with capacity;
- read energy grows with sqrt(capacity) (bitline/wordline halves) and
  with associativity (parallel tag compares), which is why the small
  but 16-way RCC costs almost as much as the 32 KB direct-indexed GCT.

Constants are calibrated so the default Hydra design point reproduces
the paper's milliwatt figures at representative activation rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.config import HydraConfig

#: Leakage per KB of SRAM at 22 nm (mW/KB).
LEAKAGE_MW_PER_KB = 0.20
#: Base read energy coefficient (pJ per sqrt(KB)).
READ_ENERGY_PJ_COEFF = 2.5
#: Energy multiplier per way of associative tag search.
ASSOC_ENERGY_SLOPE = 0.5


@dataclass(frozen=True)
class SramPowerEstimate:
    """Power of one SRAM structure under a given access rate."""

    capacity_bytes: int
    accesses_per_second: float
    dynamic_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw


def read_energy_pj(capacity_bytes: int, ways: int = 1) -> float:
    """Per-access read-modify-write energy in picojoules."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    if ways < 1:
        raise ValueError("ways must be >= 1")
    capacity_kb = capacity_bytes / 1024.0
    base = READ_ENERGY_PJ_COEFF * math.sqrt(capacity_kb)
    assoc = 1.0 + ASSOC_ENERGY_SLOPE * ways
    return base * assoc


def sram_power(
    capacity_bytes: int, accesses_per_second: float, ways: int = 1
) -> SramPowerEstimate:
    """Estimate dynamic + leakage power of one SRAM structure."""
    if accesses_per_second < 0:
        raise ValueError("access rate must be non-negative")
    energy_j = read_energy_pj(capacity_bytes, ways) * 1e-12
    return SramPowerEstimate(
        capacity_bytes=capacity_bytes,
        accesses_per_second=accesses_per_second,
        dynamic_mw=energy_j * accesses_per_second * 1e3,
        leakage_mw=LEAKAGE_MW_PER_KB * capacity_bytes / 1024.0,
    )


def hydra_sram_power(
    config: Optional[HydraConfig] = None,
    activation_rate_per_second: float = 300e6,
    rcc_access_fraction: float = 0.093,
):
    """GCT and RCC power at the paper's design point (§6.8).

    ``activation_rate_per_second`` is the system-wide ACT rate hitting
    the GCT; the RCC sees only the per-row-mode fraction (the paper's
    9.3% = RCC hits + RCT accesses).

    Returns ``(gct_estimate, rcc_estimate)``.
    """
    from repro.core.storage import hydra_storage

    if config is None:
        config = HydraConfig()
    storage = hydra_storage(config)
    gct = sram_power(
        storage.gct_bytes or 1, activation_rate_per_second, ways=1
    )
    rcc = sram_power(
        storage.rcc_bytes or 1,
        activation_rate_per_second * rcc_access_fraction,
        ways=config.rcc_ways,
    )
    return gct, rcc
