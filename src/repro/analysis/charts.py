"""Terminal-friendly ASCII charts for figure-shaped output.

The paper's figures are bar charts over workloads/suites; the CLI and
examples render their regenerated equivalents with these helpers so a
terminal session can eyeball shapes without plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping, Optional

_BLOCK = "#"


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        return "(no data)"
    peak = max_value if max_value is not None else max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        cells = int(round(width * min(value, peak) / peak))
        overflow = "+" if value > peak else ""
        lines.append(
            f"{label:<{label_width}} |{_BLOCK * cells}{overflow} "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def stacked_percentages(
    rows: Mapping[str, Mapping[str, float]],
    order: Optional[list] = None,
    width: int = 50,
    symbols: str = "#=.",
) -> str:
    """Figure-6-style 100%-stacked bars.

    ``rows`` maps a label to {component: fraction}; fractions of each
    row should sum to ~1. Components are drawn in ``order`` using one
    symbol each.
    """
    if not rows:
        return "(no data)"
    label_width = max(len(label) for label in rows)
    first = next(iter(rows.values()))
    components = order if order is not None else list(first)
    lines = []
    for label, parts in rows.items():
        bar = ""
        for component, symbol in zip(components, symbols):
            cells = int(round(width * parts.get(component, 0.0)))
            bar += symbol * cells
        lines.append(f"{label:<{label_width}} |{bar[:width]:<{width}}|")
    legend = "  ".join(
        f"{symbol}={component}"
        for component, symbol in zip(components, symbols)
    )
    return "\n".join(lines) + f"\n{'':<{label_width}}  {legend}"


def comparison_chart(
    measured: Mapping[str, float],
    paper: Mapping[str, float],
    width: int = 40,
    unit: str = "%",
) -> str:
    """Paired measured-vs-paper bars for reproduction summaries."""
    labels = [k for k in measured if k in paper]
    if not labels:
        return "(no data)"
    peak = max(
        max(measured[k] for k in labels), max(paper[k] for k in labels)
    ) or 1.0
    label_width = max(len(k) for k in labels)
    lines = []
    for key in labels:
        m_cells = int(round(width * measured[key] / peak))
        p_cells = int(round(width * paper[key] / peak))
        lines.append(
            f"{key:<{label_width}} measured |{'#' * m_cells:<{width}}| "
            f"{measured[key]:.2f}{unit}"
        )
        lines.append(
            f"{'':<{label_width}} paper    |{'=' * p_cells:<{width}}| "
            f"{paper[key]:.2f}{unit}"
        )
    return "\n".join(lines)
