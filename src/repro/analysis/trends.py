"""RowHammer threshold trend data and projection (Figure 1a, §2.2).

The published trajectory of the RowHammer threshold T_RH: 139K
activations for DDR3 in 2014 down to ~4.8K for LPDDR4 in 2020, with
the paper's motivating question — where does DDR5 land? — answered by
a simple exponential-decay projection. The ultra-low-threshold regime
the paper targets (T_RH <= 500) is where that projection points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ThresholdObservation:
    """One measured RowHammer threshold."""

    year: int
    technology: str
    trh: int
    source: str


#: Published T_RH observations (Figure 1a and §2.2's citations).
OBSERVATIONS: Tuple[ThresholdObservation, ...] = (
    ThresholdObservation(2014, "DDR3", 139_000, "Kim et al., ISCA 2014"),
    ThresholdObservation(2016, "DDR4 (gen1)", 22_000, "industry reports"),
    ThresholdObservation(2018, "DDR4 (gen2)", 18_000, "industry reports"),
    ThresholdObservation(2019, "DDR4 (gen3)", 10_000, "industry reports"),
    ThresholdObservation(2020, "LPDDR4", 4_800, "Kim et al., ISCA 2020"),
)


def decay_rate_per_year() -> float:
    """Fitted exponential decay rate of T_RH (log-linear regression)."""
    xs = [obs.year for obs in OBSERVATIONS]
    ys = [math.log(obs.trh) for obs in OBSERVATIONS]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
        (x - mean_x) ** 2 for x in xs
    )
    return slope  # negative: log(T_RH) per year


def projected_trh(year: int) -> int:
    """Extrapolate T_RH to a future year from the fitted trend."""
    slope = decay_rate_per_year()
    last = OBSERVATIONS[-1]
    log_trh = math.log(last.trh) + slope * (year - last.year)
    return max(1, int(round(math.exp(log_trh))))


def years_until_threshold(target_trh: int) -> float:
    """Years after the last observation until T_RH hits ``target_trh``."""
    if target_trh <= 0:
        raise ValueError("target_trh must be positive")
    slope = decay_rate_per_year()
    last = OBSERVATIONS[-1]
    if target_trh >= last.trh:
        return 0.0
    return (math.log(target_trh) - math.log(last.trh)) / slope


def trend_rows() -> List[dict]:
    """Figure 1a as printable rows, plus the DDR5 projection."""
    rows = [
        {
            "year": obs.year,
            "technology": obs.technology,
            "trh": obs.trh,
            "source": obs.source,
        }
        for obs in OBSERVATIONS
    ]
    rows.append(
        {
            "year": 2024,
            "technology": "DDR5 (projected)",
            "trh": projected_trh(2024),
            "source": "log-linear extrapolation",
        }
    )
    return rows
