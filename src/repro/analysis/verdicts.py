"""Class-aware judging of oracle outcomes.

The security oracle reports raw facts — violation counts and whether
the driving attack could exercise the T_RH/2 threshold at all. What
those facts *mean* depends on the tracker's declared
:data:`~repro.trackers.registry.SECURITY_CLASSES` claim: a violation
is a reproduction-level failure for a ``deterministic`` design, within
contract for a ``probabilistic`` one, expected for an ``insecure``
negative control, and unjudgeable for ``rate-control`` designs (an
activation-count oracle cannot certify a rate guarantee).

This module is the single home of that interpretation. The arena's
:class:`~repro.analysis.arena.ArenaCell` and the attack fuzzer's
verdict records both delegate here, so "what counts as INSECURE" can
never drift between the two harnesses.
"""

from __future__ import annotations

__all__ = [
    "VERDICT_BREAKS_EXPECTED",
    "VERDICT_BY_DESIGN",
    "VERDICT_INSECURE",
    "VERDICT_NA",
    "VERDICT_NOT_EXERCISED",
    "VERDICT_SECURE",
    "VERDICT_SURVIVES",
    "judge_verdict",
    "oracle_eligible",
]

#: The closed verdict vocabulary (manifest records carry these).
VERDICT_NA = "n/a"
VERDICT_BREAKS_EXPECTED = "breaks (expected)"
VERDICT_SURVIVES = "survives"
VERDICT_NOT_EXERCISED = "not exercised"
VERDICT_SECURE = "secure"
VERDICT_BY_DESIGN = "violations (by design)"
VERDICT_INSECURE = "INSECURE"


def judge_verdict(
    security_class: str, violations: int, exercised: bool
) -> str:
    """Interpret raw oracle facts against a declared security class.

    ``violations`` is the total violation count across whatever the
    oracle executed; ``exercised`` says whether the attack could drive
    some row past the threshold within a window at all (a zero-
    violation outcome on an unexercised attack is vacuous).
    """
    if security_class == "rate-control":
        return VERDICT_NA
    if security_class == "insecure":
        if violations:
            return VERDICT_BREAKS_EXPECTED
        return VERDICT_SURVIVES if exercised else VERDICT_NOT_EXERCISED
    if violations == 0:
        return VERDICT_SECURE if exercised else VERDICT_NOT_EXERCISED
    if security_class == "probabilistic":
        return VERDICT_BY_DESIGN
    return VERDICT_INSECURE


def oracle_eligible(security_class: str, violations: int) -> bool:
    """Whether an outcome may enter a Pareto frontier: the oracle found
    nothing and the tracker is not a negative control."""
    return security_class != "insecure" and violations == 0
