"""The tracker arena: every registered tracker raced on one frontier.

The paper's Table 1 and Figure 5 compare trackers one axis at a time
(storage there, slowdown here) and §5 verifies security for Hydra
alone. The arena runs the whole registry — Hydra, the paper-era
baselines, and the successor trackers (CoMeT, MINT, START) — down a
T_RH ladder from in-the-wild thresholds (139K) to the ultra-low regime
(500), and scores every (tracker, T_RH) cell on three axes at once:

- **slowdown**: geomean normalized performance vs the no-tracking
  baseline over a representative workload subset, via the cached
  parallel :class:`~repro.sim.sweep.ExperimentRunner` grid;
- **storage**: dedicated SRAM plus any LLC carve-out (START) — DRAM
  reservations (Hydra, CRA) reported separately, all at the simulated
  scale;
- **security**: the §5 oracle (:func:`verify_tracker`) driven over an
  adversarial battery (single-sided, TRRespass-style many-sided) and a
  random sanity sequence, with §5.2.1 victim-refresh feedback on.

Oracle verdicts are judged against each tracker's *declared*
:data:`~repro.trackers.registry.SECURITY_CLASSES` claim: a
``deterministic`` tracker with any violation is a reproduction-level
failure (rendered ``INSECURE``), a ``probabilistic`` one may violate
at low thresholds by design, ``rate-control`` designs cannot be
certified by an activation-count oracle at all, and ``insecure``
entries are negative controls expected to break.

Per rung, the cells that survive the oracle are reduced to a Pareto
frontier over (slowdown, storage) — the arena's headline output.

When a manifest destination is configured (see
:func:`repro.obs.manifest.resolve_manifest_path`), every oracle cell
appends one :class:`~repro.obs.manifest.ArenaOracleRecord` line next
to the grid's per-cell provenance records, so one JSON-lines file
carries the full arena provenance.

Entry points: ``hydra-sim arena`` and the ``arena`` named experiment.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.security import verify_tracker
from repro.analysis.verdicts import judge_verdict, oracle_eligible
from repro.attacks.compile import (
    CompiledAttack,
    compile_program,
    exercised_within,
)
from repro.attacks.programs import (
    DEFAULT_MANY_AGGRESSORS as MANY_AGGRESSORS,
    MANY_ACT_CAP,
    RANDOM_ACT_CAP,
    RANDOM_SEED,
)
from repro.attacks.registry import (
    AttackContext,
    build_attack,
    canonical_attack_spec,
    compile_attack,
)
from repro.attacks.resolve import resolve
from repro.dram.timing import PAPER_GEOMETRY
from repro.obs.manifest import ArenaOracleRecord, ManifestWriter
from repro.sim.config import SystemConfig, resolve_jobs
from repro.sim.sweep import ExperimentRunner
from repro.trackers.registry import (
    available_trackers,
    build_tracker,
    canonical_spec,
    parse_spec,
    tracker_info,
)

#: T_RH rungs raced by default: JEDEC-era 139K (the paper's §2 upper
#: anchor) down through the Figure-7 regime to the ultra-low 500.
DEFAULT_TRH_LADDER = (139_000, 20_000, 4_800, 1_000, 500)

#: Representative workload subset for the slowdown axis (one per
#: behaviour family: memory-bound SPEC-int/fp, streaming, GUPS).
DEFAULT_ARENA_WORKLOADS = ("mcf", "lbm", "xz", "stream", "GUPS")

#: Oracle battery sequence names (see :func:`oracle_sequence`). Each is
#: an alias for a registered attack program whose defaults reproduce
#: the historical hand-built battery exactly; ``run_arena`` also
#: accepts full attack specs (``half_double@victim=4000``) here.
ORACLE_SEQUENCES = ("single", "many", "random")

#: Battery alias → registered attack (context defaults do the sizing).
BATTERY_ATTACKS = {
    "single": "single_sided",
    "many": "many_sided",
    "random": "random",
}


def oracle_attack(
    name: str, trh: int, total_rows: int, act_max: int
) -> Tuple[CompiledAttack, bool]:
    """Build one battery attack; returns ``(compiled, exercised)``.

    ``exercised`` says whether the attack can drive some row past the
    T_RH/2 mitigation threshold *within one tracking window* of
    ``act_max`` activations — the harness resets every window, so a
    "secure" verdict on an unexercised attack is vacuous and is
    reported as such. At small simulation scales the scaled window
    shrinks while thresholds stay invariant, so high rungs can become
    unexercisable — the flag keeps those cells honest. It is computed
    by exact replay (:func:`~repro.attacks.compile.exercised_within`)
    rather than per-pattern arithmetic.

    The battery is resolved *without* geometry bounds-checking: its
    fixed aggressor rows (5, 200..217) predate the DSL and must keep
    probing trackers identically even at simulation scales whose row
    space is smaller.
    """
    try:
        spec = BATTERY_ATTACKS[name]
    except KeyError:
        raise ValueError(
            f"unknown oracle sequence {name!r}; available: "
            + ", ".join(ORACLE_SEQUENCES)
        ) from None
    context = _battery_context(trh, total_rows)
    program = build_attack(spec, context)
    compiled = compile_program(resolve(program))
    exercised = exercised_within(compiled, context.threshold, act_max)
    return compiled, exercised


def _battery_context(trh: int, total_rows: int) -> AttackContext:
    """A context carrying exactly the knobs the battery sizes against
    (threshold from ``trh``, row span from ``total_rows``)."""
    geometry = replace(
        PAPER_GEOMETRY,
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=1,
        rows_per_bank=max(1, total_rows),
    )
    return AttackContext(geometry=geometry, trh=trh)


def oracle_sequence(
    name: str, trh: int, total_rows: int, act_max: int
) -> Tuple[List[int], bool]:
    """Flat-list form of :func:`oracle_attack` (compatibility shim)."""
    compiled, exercised = oracle_attack(name, trh, total_rows, act_max)
    return compiled.rows(), exercised


def _cell_attack(
    cfg: SystemConfig, trh: int, sequence_name: str
) -> Tuple[CompiledAttack, bool, str]:
    """(compiled, exercised, label) for a battery alias or attack spec."""
    act_max = cfg.timing.max_activations_per_window()
    if sequence_name in BATTERY_ATTACKS:
        compiled, exercised = oracle_attack(
            sequence_name, trh, cfg.geometry.total_rows, act_max
        )
        return compiled, exercised, sequence_name
    context = AttackContext.from_system(cfg)
    compiled = compile_attack(sequence_name, context)
    exercised = exercised_within(compiled, context.threshold, act_max)
    return compiled, exercised, canonical_attack_spec(sequence_name)


def _oracle_cell(
    config: SystemConfig, spec: str, trh: int, sequence_name: str
) -> Dict[str, Any]:
    """Pool-worker work unit: one (tracker, T_RH, attack) verdict.

    ``sequence_name`` is a battery alias (``single``/``many``/
    ``random``) or a full attack spec; the attack program and the
    tracker are both built from picklable inputs so fan-out ships only
    (config, spec, trh, name) per cell.
    """
    cfg = config.with_trh(trh)
    act_max = cfg.timing.max_activations_per_window()
    sequence, exercised, label = _cell_attack(cfg, trh, sequence_name)
    tracker = build_tracker(spec, cfg.tracker_context())
    report = verify_tracker(
        tracker,
        cfg.geometry,
        sequence,
        threshold=max(1, trh // 2),
        # Reset every ACT_max demand activations: a window cannot hold
        # more — trackers whose soundness leans on that bound (TWiCe's
        # pruning) are entitled to it.
        window_every=act_max,
        feed_mitigation_activations=True,
        # Depth 2 keeps §5.2.1 feedback pressure on every tracker while
        # bounding cascade amplification on mitigation-happy designs.
        max_feedback_depth=2,
    )
    return {
        "spec": spec,
        "trh": trh,
        "sequence": label,
        "exercised": exercised,
        "secure": report.secure,
        "violations": len(report.violations),
        "max_unmitigated": report.max_unmitigated_count,
        "mitigations": report.mitigations,
        "activations": report.activations,
    }


@dataclass(frozen=True)
class OracleOutcome:
    """One oracle sequence's verdict for a (tracker, T_RH) cell."""

    sequence: str
    secure: bool
    exercised: bool
    violations: int
    max_unmitigated: int
    mitigations: int
    activations: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sequence": self.sequence,
            "secure": self.secure,
            "exercised": self.exercised,
            "violations": self.violations,
            "max_unmitigated": self.max_unmitigated,
            "mitigations": self.mitigations,
            "activations": self.activations,
        }


@dataclass
class ArenaCell:
    """One (tracker, T_RH) cell: all three axes plus the verdict."""

    spec: str
    trh: int
    security_class: str
    slowdown_percent: float
    sram_bytes: int
    llc_reserved_bytes: int
    dram_reserved_bytes: int
    oracle: Tuple[OracleOutcome, ...] = ()
    pareto: bool = False

    @property
    def storage_bytes(self) -> int:
        """The frontier's storage axis: dedicated SRAM + LLC carve-out.

        DRAM reservations are kept off the axis (they are capacity,
        not die area — the distinction Hydra's design rests on) but
        reported alongside.
        """
        return self.sram_bytes + self.llc_reserved_bytes

    @property
    def total_violations(self) -> int:
        return sum(outcome.violations for outcome in self.oracle)

    @property
    def exercised(self) -> bool:
        return any(outcome.exercised for outcome in self.oracle)

    @property
    def verdict(self) -> str:
        """Oracle outcome interpreted against the declared class (the
        shared judge in :mod:`repro.analysis.verdicts`)."""
        return judge_verdict(
            self.security_class, self.total_violations, self.exercised
        )

    @property
    def oracle_eligible(self) -> bool:
        """Whether this cell may enter the Pareto frontier: the oracle
        found nothing and the tracker is not a negative control."""
        return oracle_eligible(self.security_class, self.total_violations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "trh": self.trh,
            "security_class": self.security_class,
            "slowdown_percent": round(self.slowdown_percent, 4),
            "sram_bytes": self.sram_bytes,
            "llc_reserved_bytes": self.llc_reserved_bytes,
            "dram_reserved_bytes": self.dram_reserved_bytes,
            "storage_bytes": self.storage_bytes,
            "verdict": self.verdict,
            "exercised": self.exercised,
            "pareto": self.pareto,
            "oracle": [outcome.to_dict() for outcome in self.oracle],
        }


@dataclass
class ArenaReport:
    """Full arena outcome: every cell, plus per-rung frontiers."""

    trh_ladder: Tuple[int, ...]
    workloads: Tuple[str, ...]
    scale: float
    engine: str
    cells: List[ArenaCell] = field(default_factory=list)

    def rung(self, trh: int) -> List[ArenaCell]:
        return [cell for cell in self.cells if cell.trh == trh]

    def cell(self, spec: str, trh: int) -> ArenaCell:
        wanted = canonical_spec(spec)
        for candidate in self.cells:
            if candidate.trh == trh and candidate.spec == wanted:
                return candidate
        raise KeyError(f"no arena cell ({spec!r}, trh={trh})")

    def pareto_frontier(self, trh: int) -> List[ArenaCell]:
        return [cell for cell in self.rung(trh) if cell.pareto]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trh_ladder": list(self.trh_ladder),
            "workloads": list(self.workloads),
            "scale": self.scale,
            "engine": self.engine,
            "cells": [cell.to_dict() for cell in self.cells],
            "pareto": {
                str(trh): [c.spec for c in self.pareto_frontier(trh)]
                for trh in self.trh_ladder
            },
        }


def mark_pareto(cells: Sequence[ArenaCell]) -> None:
    """Flag the (slowdown, storage) frontier among eligible cells.

    A cell is dominated when another eligible cell is at least as good
    on both axes and strictly better on one.
    """
    eligible = [cell for cell in cells if cell.oracle_eligible]
    for cell in cells:
        cell.pareto = False
    for cell in eligible:
        dominated = any(
            other is not cell
            and other.slowdown_percent <= cell.slowdown_percent
            and other.storage_bytes <= cell.storage_bytes
            and (
                other.slowdown_percent < cell.slowdown_percent
                or other.storage_bytes < cell.storage_bytes
            )
            for other in eligible
        )
        cell.pareto = not dominated
    # Dominance ties (identical points) would mark both; keep that —
    # they genuinely co-own the frontier point.


def _storage_axes(spec: str, cfg: SystemConfig) -> Tuple[int, int, int]:
    """(sram, llc_reserved, dram_reserved) for one spec at one rung."""
    tracker = build_tracker(spec, cfg.tracker_context())
    stats = tracker.extra_stats()
    llc = int(stats.get("llc_reserved_bytes", 0))
    return tracker.sram_bytes(), llc, tracker.dram_reserved_bytes()


def run_arena(
    config: SystemConfig,
    trackers: Optional[Sequence[str]] = None,
    trh_ladder: Sequence[int] = DEFAULT_TRH_LADDER,
    workloads: Sequence[str] = DEFAULT_ARENA_WORKLOADS,
    sequences: Sequence[str] = ORACLE_SEQUENCES,
    jobs: Optional[int] = None,
    manifest_path: Optional[Union[str, Path]] = None,
    progress: Optional[bool] = None,
) -> ArenaReport:
    """Race every tracker down the T_RH ladder; see the module doc.

    ``trackers`` defaults to the whole registry. The ``baseline``
    column is always included (it anchors the slowdown axis); its own
    slowdown is 0 by construction. Performance grids run through the
    shared :class:`ExperimentRunner` cache, so repeated arena runs
    (and overlapping sweeps) pay for each simulation once; oracle
    cells are cheap enough to re-run but fan out over the same
    ``jobs`` process budget.
    """
    ladder = tuple(trh_ladder)
    if not ladder:
        raise ValueError("trh_ladder must name at least one T_RH rung")
    specs = [canonical_spec(s) for s in (trackers or available_trackers())]
    if "baseline" not in specs:
        specs.insert(0, "baseline")
    report = ArenaReport(
        trh_ladder=ladder,
        workloads=tuple(workloads),
        scale=config.scale,
        engine=config.engine,
    )
    n_jobs = resolve_jobs(jobs)
    oracle_records: List[ArenaOracleRecord] = []
    manifest_dest = None

    for trh in ladder:
        cfg = config.with_trh(trh)
        runner = ExperimentRunner(
            cfg, jobs=jobs, manifest_path=manifest_path
        )
        manifest_dest = runner.manifest_path
        grid = runner.run_grid(specs, list(workloads), progress=progress)

        outcomes = _run_oracle_battery(
            config, specs, trh, sequences, n_jobs
        )
        for spec in specs:
            info = tracker_info(parse_spec(spec).name)
            if spec == "baseline":
                slowdown = 0.0
            else:
                geomean = grid.comparisons(spec).geomean()
                slowdown = 100.0 * (1.0 / geomean - 1.0)
            sram, llc, dram = _storage_axes(spec, cfg)
            cell = ArenaCell(
                spec=spec,
                trh=trh,
                security_class=info.security_class,
                slowdown_percent=slowdown,
                sram_bytes=sram,
                llc_reserved_bytes=llc,
                dram_reserved_bytes=dram,
                oracle=tuple(outcomes[spec]),
            )
            report.cells.append(cell)
            for outcome in cell.oracle:
                oracle_records.append(
                    ArenaOracleRecord(
                        spec=spec,
                        trh=trh,
                        security_class=info.security_class,
                        sequence=outcome.sequence,
                        secure=outcome.secure,
                        violations=outcome.violations,
                        max_unmitigated=outcome.max_unmitigated,
                        mitigations=outcome.mitigations,
                        activations=outcome.activations,
                        exercised=outcome.exercised,
                    )
                )
        mark_pareto(report.rung(trh))

    if manifest_dest is not None and oracle_records:
        ManifestWriter(manifest_dest).append(oracle_records)
    return report


def _run_oracle_battery(
    config: SystemConfig,
    specs: Sequence[str],
    trh: int,
    sequences: Sequence[str],
    n_jobs: int,
) -> Dict[str, List[OracleOutcome]]:
    """All (spec, sequence) oracle cells for one rung, fanned out."""
    cells = [(spec, name) for spec in specs for name in sequences]
    payloads: List[Dict[str, Any]] = []
    if n_jobs > 1 and len(cells) > 1:
        workers = min(n_jobs, len(cells))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_oracle_cell, config, spec, trh, name)
                for spec, name in cells
            ]
            for future in as_completed(futures):
                payloads.append(future.result())
    else:
        payloads = [
            _oracle_cell(config, spec, trh, name) for spec, name in cells
        ]
    outcomes: Dict[str, List[OracleOutcome]] = {spec: [] for spec in specs}
    for payload in payloads:
        outcomes[payload["spec"]].append(
            OracleOutcome(
                sequence=payload["sequence"],
                secure=payload["secure"],
                exercised=payload["exercised"],
                violations=payload["violations"],
                max_unmitigated=payload["max_unmitigated"],
                mitigations=payload["mitigations"],
                activations=payload["activations"],
            )
        )
    # Completion order is nondeterministic under the pool; normalize
    # to the requested sequence order (battery aliases stay verbatim,
    # attack specs are recorded in canonical form).
    order = {}
    for i, name in enumerate(sequences):
        if name not in BATTERY_ATTACKS:
            name = canonical_attack_spec(name)
        order[name] = i
    for spec in outcomes:
        outcomes[spec].sort(key=lambda o: order[o.sequence])
    return outcomes
