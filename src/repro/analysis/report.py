"""Markdown report generation from recorded benchmark results.

Every benchmark under ``benchmarks/`` writes its regenerated
table/figure data as JSON into ``benchmarks/results/``. This module
turns that directory into a human-readable reproduction report —
the same information EXPERIMENTS.md curates, produced mechanically —
so a fresh run at a different scale (e.g. ``REPRO_SCALE=1``) can be
summarized without hand-editing.

Used by ``hydra-sim report``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

#: Paper reference values for side-by-side display.
PAPER_REFERENCE = {
    "fig5_all36_slowdown": {"graphene": 0.1, "cra": 25.8, "hydra": 0.7},
    "fig6_averages": {"gct_only": 0.907, "rcc_hit": 0.090, "rct_access": 0.003},
    "fig7_all36": {"500": 0.7, "250": 1.6, "125": 4.0},
    "fig8_all36": {"hydra": 0.7, "hydra-norcc": 4.5, "hydra-nogct": 20.0},
    "table4_total_kib": 56.5,
}


def load_results(results_dir: Path) -> Dict[str, dict]:
    """All recorded experiment payloads, keyed by experiment name."""
    results: Dict[str, dict] = {}
    if not results_dir.is_dir():
        return results
    for path in sorted(results_dir.glob("*.json")):
        try:
            results[path.stem] = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
    return results


def _line(label: str, paper, measured) -> str:
    return f"| {label} | {paper} | {measured} |"


def render_report(results: Dict[str, dict]) -> str:
    """Markdown summary of paper-vs-measured for recorded results."""
    lines: List[str] = [
        "# Reproduction report",
        "",
        "Generated from benchmarks/results/ — run "
        "`pytest benchmarks/ --benchmark-only` to refresh.",
        "",
        "| quantity | paper | measured |",
        "|---|---|---|",
    ]
    fig5 = results.get("fig5_performance")
    if fig5:
        for tracker, paper_value in PAPER_REFERENCE["fig5_all36_slowdown"].items():
            measured = fig5["all36_slowdown_percent"].get(tracker)
            lines.append(
                _line(
                    f"{tracker} avg slowdown (Fig. 5)",
                    f"{paper_value}%",
                    f"{measured}%",
                )
            )
    fig6 = results.get("fig6_distribution")
    if fig6:
        for key, paper_value in PAPER_REFERENCE["fig6_averages"].items():
            measured = fig6["averages"].get(key, 0.0)
            lines.append(
                _line(
                    f"updates at {key} (Fig. 6)",
                    f"{100 * paper_value:.1f}%",
                    f"{100 * measured:.1f}%",
                )
            )
    fig7 = results.get("fig7_trh_sensitivity")
    if fig7:
        for trh, paper_value in PAPER_REFERENCE["fig7_all36"].items():
            measured = fig7.get(trh, {}).get("ALL(36)")
            lines.append(
                _line(
                    f"Hydra @ T_RH={trh} (Fig. 7)",
                    f"{paper_value}%",
                    f"{measured}%",
                )
            )
    fig8 = results.get("fig8_ablation")
    if fig8:
        for variant, paper_value in PAPER_REFERENCE["fig8_all36"].items():
            measured = fig8["all36_slowdown_percent"].get(variant)
            lines.append(
                _line(f"{variant} (Fig. 8)", f"{paper_value}%", f"{measured}%")
            )
    table4 = results.get("table4_hydra_storage")
    if table4:
        lines.append(
            _line(
                "Hydra SRAM total (Table 4)",
                f"{PAPER_REFERENCE['table4_total_kib']} KB",
                f"{table4['total_kib']} KB",
            )
        )
    security = results.get("sec5_security")
    if security:
        lines.append("")
        lines.append("## Security (Theorem-1 oracle)")
        lines.append("")
        lines.append("| attack | secure | max unmitigated |")
        lines.append("|---|---|---|")
        for name, row in sorted(security.items()):
            lines.append(
                f"| {name} | {'yes' if row['secure'] else '**NO**'} | "
                f"{row['max_unmitigated']} |"
            )
    missing = [
        name
        for name in (
            "fig5_performance",
            "fig6_distribution",
            "fig7_trh_sensitivity",
            "fig8_ablation",
            "sec5_security",
        )
        if name not in results
    ]
    if missing:
        lines.append("")
        lines.append(
            "Missing experiments (benchmarks not yet run): "
            + ", ".join(missing)
        )
    lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: Path, output_path: Optional[Path] = None
) -> str:
    """Render the report; optionally write it to disk."""
    text = render_report(load_results(results_dir))
    if output_path is not None:
        output_path.write_text(text)
    return text


def _kib(size_bytes: int) -> str:
    """Compact storage rendering for arena tables."""
    if size_bytes == 0:
        return "0"
    if size_bytes < 1024:
        return f"{size_bytes} B"
    kib = size_bytes / 1024
    if kib < 1024:
        return f"{kib:.1f} KiB"
    return f"{kib / 1024:.1f} MiB"


def render_arena(report) -> str:
    """Markdown Pareto report of an arena run (``hydra-sim arena``).

    One table per T_RH rung — slowdown, storage split by medium,
    oracle verdict — with the per-rung (slowdown, storage) Pareto
    frontier starred and summarized. Storage is at the simulated
    scale, so cross-tracker ratios (the frontier's currency) are
    exact while absolute sizes shrink with ``scale``.
    """
    lines: List[str] = [
        "# Tracker arena — slowdown / storage / security Pareto report",
        "",
        f"- scale: {report.scale} | engine: {report.engine}",
        f"- workloads (slowdown axis): {', '.join(report.workloads)}",
        f"- T_RH ladder: {', '.join(str(t) for t in report.trh_ladder)}",
        "",
        "Verdicts are judged against each tracker's declared security"
        " class; `*` marks the per-rung Pareto frontier over"
        " (slowdown, SRAM+LLC storage) among oracle-clean cells.",
    ]
    for trh in report.trh_ladder:
        cells = sorted(
            report.rung(trh),
            key=lambda c: (not c.pareto, c.slowdown_percent),
        )
        lines.extend(
            [
                "",
                f"## T_RH = {trh}",
                "",
                "| tracker | class | slowdown | SRAM | LLC | DRAM |"
                " oracle |",
                "|---|---|---|---|---|---|---|",
            ]
        )
        for cell in cells:
            star = " *" if cell.pareto else ""
            verdict = cell.verdict
            if cell.total_violations:
                verdict += f" ({cell.total_violations} violations)"
            lines.append(
                f"| {cell.spec}{star} | {cell.security_class} |"
                f" {cell.slowdown_percent:.2f}% |"
                f" {_kib(cell.sram_bytes)} |"
                f" {_kib(cell.llc_reserved_bytes)} |"
                f" {_kib(cell.dram_reserved_bytes)} |"
                f" {verdict} |"
            )
        frontier = report.pareto_frontier(trh)
        if frontier:
            lines.append("")
            lines.append(
                "Pareto frontier: "
                + ", ".join(cell.spec for cell in frontier)
            )
    lines.append("")
    return "\n".join(lines)


def render_manifest(manifest_path: Path) -> str:
    """Markdown summary of a sweep manifest (``report --manifest``).

    A manifest is the provenance log sweeps append to (see
    :mod:`repro.obs.manifest`): one JSON line per grid cell. The
    summary answers "what ran, on which engine, at what cost" without
    the reader parsing JSON lines by hand.
    """
    from repro.obs.manifest import read_manifest, summarize_manifest

    records, skipped = read_manifest(manifest_path)
    summary = summarize_manifest(records)
    lines: List[str] = [
        f"# Sweep manifest — {manifest_path}",
        "",
        f"- cells: {summary['cells']}"
        f" ({summary['cache_hits']} cache hits,"
        f" {summary['simulated']} simulated)",
        f"- simulated wall time: {summary['simulated_wall_s']:.2f} s",
        f"- simulated requests: {summary['simulated_requests']}",
        f"- simulation throughput: "
        f"{summary['requests_per_second']:,.0f} req/s",
    ]
    if skipped:
        lines.append(f"- skipped lines (corrupt/unreadable): {skipped}")
    lines.extend(["", "| engine | cells |", "|---|---|"])
    for engine, count in sorted(summary["by_engine"].items()):
        lines.append(f"| {engine} | {count} |")
    lines.extend(["", "| spec | cells |", "|---|---|"])
    for spec, count in sorted(summary["by_spec"].items()):
        lines.append(f"| {spec} | {count} |")
    slowest = sorted(
        (r for r in records if not r.from_cache),
        key=lambda r: r.wall_time_s,
        reverse=True,
    )[:5]
    if slowest:
        lines.extend(
            ["", "## Slowest simulated cells", "",
             "| spec | workload | engine | wall (s) | req/s |", "|---|---|---|---|---|"]
        )
        for record in slowest:
            lines.append(
                f"| {record.spec} | {record.workload} | {record.engine} |"
                f" {record.wall_time_s:.2f} | {record.throughput_rps:,.0f} |"
            )
    lines.append("")
    return "\n".join(lines)
