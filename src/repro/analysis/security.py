"""Security verification of trackers against a ground-truth oracle (§5).

The paper proves (Theorem-1) that Hydra issues a mitigation for every
row at or before each T_RH/2 = T_H activations within a tracking
window. This module *checks* that property mechanically: an oracle
maintains the exact activation count of every row since the window
start or the row's last mitigation, feeds each activation to the
tracker under test, executes the tracker's mitigations (including the
victim-refresh feedback activations of §5.2.1), and flags a violation
the moment any row's true count exceeds the bound without a
mitigation.

Used by the unit/property tests (random and adversarial sequences) and
by ``examples/attack_analysis.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.attacks.compile import EVENT_ACT, EVENT_SYNC, CompiledAttack
from repro.dram.address import AddressMapper
from repro.dram.timing import DramGeometry
from repro.interfaces import ActivationTracker

#: What the harness can execute: a flat row-id sequence (the historical
#: interface) or a compiled attack program, whose ``sync_refresh``
#: events become explicit window resets.
AttackSequence = Union[CompiledAttack, Iterable[int]]


@dataclass(frozen=True)
class SecurityViolation:
    """One instance of a row exceeding the bound unmitigated.

    ``activation_index`` is the 0-based position of the offending
    activation in the *global* activation order the harness executed —
    demand activations and §5.2.1 victim-refresh feedback activations
    alike. Two violations therefore always carry distinct, strictly
    increasing indices, even when both surface while draining one
    mitigation's feedback cascade.
    """

    row: int
    true_count: int
    activation_index: int


@dataclass
class SecurityReport:
    """Outcome of one verification run."""

    threshold: int
    activations: int = 0
    mitigations: int = 0
    victim_refreshes: int = 0
    max_unmitigated_count: int = 0
    violations: List[SecurityViolation] = field(default_factory=list)

    @property
    def secure(self) -> bool:
        return not self.violations


class TrackingOracle:
    """Exact per-row activation counts since window start / mitigation."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def record(self, row: int) -> int:
        count = self._counts.get(row, 0) + 1
        self._counts[row] = count
        return count

    def mitigated(self, row: int) -> None:
        self._counts[row] = 0

    def count_of(self, row: int) -> int:
        return self._counts.get(row, 0)

    def window_reset(self) -> None:
        self._counts.clear()


class SecurityHarness:
    """Drives a tracker with an activation sequence under oracle watch."""

    def __init__(
        self,
        tracker: ActivationTracker,
        geometry: DramGeometry,
        threshold: int,
        blast_radius: int = 2,
        feed_mitigation_activations: bool = True,
        max_violations: int = 16,
        max_feedback_depth: int = 4,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.tracker = tracker
        self.mapper = AddressMapper(geometry)
        self.threshold = threshold
        self.blast_radius = blast_radius
        self.feed_mitigation_activations = feed_mitigation_activations
        self.max_violations = max_violations
        #: Bound on mitigation-feedback chains (see
        #: MemoryController.max_feedback_depth for rationale).
        self.max_feedback_depth = max_feedback_depth
        self.oracle = TrackingOracle()
        self.report = SecurityReport(threshold=threshold)

    def run(
        self,
        sequence: AttackSequence,
        window_every: Optional[int] = None,
    ) -> SecurityReport:
        """Execute an attack; optionally reset every N activations.

        ``sequence`` is either a flat row-id iterable or a
        :class:`~repro.attacks.compile.CompiledAttack`, whose
        ``sync_refresh`` events execute as explicit window resets —
        that is how refresh-synchronized programs express "wait out
        the window, then burst". ``window_every`` counts *demand*
        activations since the last reset, mirroring a time-based
        reset under a constant activation rate.
        """
        if isinstance(sequence, CompiledAttack):
            events: Iterable[Tuple[str, int]] = sequence.iter_events()
        else:
            events = ((EVENT_ACT, row) for row in sequence)
        since_reset = 0
        for kind, row in events:
            if kind == EVENT_SYNC:
                self.sync_window()
                since_reset = 0
                continue
            if window_every and since_reset and since_reset % window_every == 0:
                self.sync_window()
                since_reset = 0
            self._activate(row)
            since_reset += 1
            if len(self.report.violations) >= self.max_violations:
                break
        return self.report

    def sync_window(self) -> None:
        """Advance tracker and oracle to the next tracking window."""
        self.tracker.on_window_reset()
        self.oracle.window_reset()

    # ------------------------------------------------------------------

    def _activate(self, row: int) -> None:
        """One activation plus the tracker's full feedback cascade.

        Violations are stamped with the global activation counter
        (``report.activations``), not the demand activation's position:
        a feedback cascade executes several activations under one
        demand index, and stamping them all with that index made
        cascade violations indistinguishable and indices non-monotonic
        in true activation order.
        """
        pending = deque(((row, 0),))
        while pending:
            current, depth = pending.popleft()
            self.report.activations += 1
            index = self.report.activations - 1
            count = self.oracle.record(current)
            response = self.tracker.on_activation(current)
            mitigated_rows = response.mitigate_rows if response else ()
            for aggressor in mitigated_rows:
                self.report.mitigations += 1
                self.oracle.mitigated(aggressor)
                for victim in self.mapper.neighbors(aggressor, self.blast_radius):
                    self.report.victim_refreshes += 1
                    if (
                        self.feed_mitigation_activations
                        and depth < self.max_feedback_depth
                    ):
                        pending.append((victim, depth + 1))
            if current not in mitigated_rows:
                if count > self.report.max_unmitigated_count:
                    self.report.max_unmitigated_count = count
                if count > self.threshold:
                    self.report.violations.append(
                        SecurityViolation(
                            row=current,
                            true_count=count,
                            activation_index=index,
                        )
                    )


def verify_tracker(
    tracker: ActivationTracker,
    geometry: DramGeometry,
    sequence: AttackSequence,
    threshold: int,
    window_every: Optional[int] = None,
    blast_radius: int = 2,
    feed_mitigation_activations: bool = True,
    max_violations: int = 16,
    max_feedback_depth: int = 4,
) -> SecurityReport:
    """Convenience wrapper: build a harness and run one sequence.

    Every harness knob is plumbed through — in particular
    ``feed_mitigation_activations`` (disable the §5.2.1 victim-refresh
    feedback) and ``max_feedback_depth``, which earlier versions of
    this wrapper silently dropped, leaving callers unable to configure
    the cascade without building a :class:`SecurityHarness` by hand.
    """
    harness = SecurityHarness(
        tracker,
        geometry,
        threshold,
        blast_radius=blast_radius,
        feed_mitigation_activations=feed_mitigation_activations,
        max_violations=max_violations,
        max_feedback_depth=max_feedback_depth,
    )
    return harness.run(sequence, window_every=window_every)
