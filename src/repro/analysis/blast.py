"""Mitigation-cascade (Half-Double) analysis — paper §7.4.

Victim refreshes are themselves activations, so heavy hammering of one
row induces a (sharply decaying) activation cascade outward: the
paper's worked example is that ~300K hammers on a row at T_H = 250
yield 1200 mitigations of that row, whose victim refreshes give each
distance-1 neighbour 1200 activations, which in turn draw just 4
mitigations each — and distance-2 rows then see only 4 refresh
activations, far below any threshold. That geometric collapse is why
counting mitigation-induced activations (§5.2.1) plus a blast radius
of 2 defeats Half-Double.

This module computes the cascade analytically and checks a design
point's safety margin; tests cross-validate it against the functional
tracker + oracle harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CascadeRing:
    """Activation/mitigation totals at one distance from the aggressor."""

    distance: int
    activations_per_row: int
    mitigations_per_row: int


def mitigation_cascade(
    hammers: int,
    th: int,
    blast_radius: int = 2,
    max_distance: int = 4,
) -> List[CascadeRing]:
    """Propagate hammering outward through victim-refresh feedback.

    Ring 0 is the aggressor itself (``hammers`` direct activations);
    every mitigation of a ring-d row refreshes the ``blast_radius``
    rows on each side, handing one activation per mitigation to each
    ring-(d+1) row (the nearest-neighbour worst case: all of a row's
    refresh traffic concentrated on one next-ring row).
    """
    if hammers < 0 or th <= 0:
        raise ValueError("hammers must be >= 0 and th positive")
    if blast_radius < 0 or max_distance < 0:
        raise ValueError("radii must be non-negative")
    rings: List[CascadeRing] = []
    activations = hammers
    for distance in range(max_distance + 1):
        mitigations = activations // th if blast_radius > 0 else 0
        rings.append(
            CascadeRing(
                distance=distance,
                activations_per_row=activations,
                mitigations_per_row=mitigations,
            )
        )
        # Next ring's rows are activated once per mitigation here.
        activations = mitigations
        if activations == 0:
            break
    return rings


def paper_worked_example() -> List[CascadeRing]:
    """§7.4's numbers: 300K hammers at the default design point."""
    return mitigation_cascade(hammers=300_000, th=250, blast_radius=2)


def is_design_safe(
    trh: int,
    hammers: int,
    blast_radius: int = 2,
    count_mitigation_activations: bool = True,
) -> bool:
    """Does the cascade keep every non-ring-0 row below T_RH?

    With §5.2.1's rule (mitigation activations are counted), ring-d
    rows are themselves mitigated whenever their induced activations
    approach the threshold, so safety means: no ring beyond the
    aggressor ever accumulates T_RH activations *between its own
    mitigations*. Without the rule, ring-1 rows absorb all induced
    activations unmitigated — the Half-Double hole.
    """
    th = trh // 2
    rings = mitigation_cascade(hammers, th, blast_radius)
    for ring in rings[1:]:
        if count_mitigation_activations:
            # Counted: the ring is mitigated every th of its own
            # activations, so unmitigated accumulation is < th < trh.
            continue
        if ring.activations_per_row >= trh:
            return False
    if not count_mitigation_activations and blast_radius < 2:
        # Distance-2 coupling with no distance-2 refresh: unsafe at
        # Half-Double hammer counts regardless.
        return hammers < trh
    return True


def amplification_factor(hammers: int, th: int, blast_radius: int = 2) -> float:
    """Extra refresh activations per demand activation (overhead view)."""
    if hammers <= 0:
        return 0.0
    rings = mitigation_cascade(hammers, th, blast_radius)
    per_side = blast_radius
    extra = sum(
        2 * per_side * ring.mitigations_per_row for ring in rings
    )
    return extra / hammers
