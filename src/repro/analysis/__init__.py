"""Analysis tools: security verification, SRAM power, T_RH trends."""

from repro.analysis.blast import (
    CascadeRing,
    amplification_factor,
    is_design_safe,
    mitigation_cascade,
    paper_worked_example,
)
from repro.analysis.charts import (
    bar_chart,
    comparison_chart,
    stacked_percentages,
)
from repro.analysis.report import load_results, render_report, write_report
from repro.analysis.security import (
    SecurityHarness,
    SecurityReport,
    SecurityViolation,
    TrackingOracle,
    verify_tracker,
)
from repro.analysis.sram_power import (
    SramPowerEstimate,
    hydra_sram_power,
    read_energy_pj,
    sram_power,
)
from repro.analysis.trends import (
    OBSERVATIONS,
    ThresholdObservation,
    projected_trh,
    trend_rows,
    years_until_threshold,
)

__all__ = [
    "CascadeRing",
    "OBSERVATIONS",
    "amplification_factor",
    "bar_chart",
    "comparison_chart",
    "is_design_safe",
    "stacked_percentages",
    "load_results",
    "mitigation_cascade",
    "paper_worked_example",
    "render_report",
    "write_report",
    "SecurityHarness",
    "SecurityReport",
    "SecurityViolation",
    "SramPowerEstimate",
    "ThresholdObservation",
    "TrackingOracle",
    "hydra_sram_power",
    "projected_trh",
    "read_energy_pj",
    "sram_power",
    "trend_rows",
    "verify_tracker",
    "years_until_threshold",
]
