"""The sweep job broker: shard grids across workers, cache-first.

``SweepBroker`` turns submitted :class:`~repro.sim.grid.GridSpec`s
into filled result-cache entries. Design invariants (DESIGN.md §15):

- **The cache is the system of record.** A job's durable state is its
  spec + status + manifest (see :mod:`repro.service.jobs`); cell
  payloads live only in the content-addressed
  :class:`~repro.sim.cache.ResultCache`. Kill the broker at any point,
  start a new one on the same directories, call :meth:`resume`, and
  every job completes having re-simulated only the cells that never
  made it to the cache.
- **In-flight dedup.** Cells are identified by their canonical cache
  key, so two jobs wanting the same (config, tracker, workload) —
  submitted concurrently or not — share one in-flight task in this
  broker, and the lease protocol extends the same guarantee across
  broker processes sharing a cache directory.
- **Per-cell retry with backoff.** A worker crash (or a broken
  process pool) fails one attempt of one cell, not the job: the cell
  is retried up to ``max_retries`` times with exponential backoff
  before the job is marked FAILED. The clock and sleep are injectable
  so tests drive the schedule deterministically.
- **Preemption.** :meth:`cancel` stops a job between cells; cells
  already dispatched run to completion (their cache entries are kept
  — cancelling a job never poisons another job's cells).

Execution pools: ``"process"`` (default — one OS process per worker,
the same isolation the parallel sweep uses), ``"thread"`` (shared
memory; the in-process default for tests and ``repro.api.sweep``),
and ``"inline"`` (no concurrency; deterministic single-step tests).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.manifest import ManifestWriter, make_record, read_manifest
from repro.sim.cache import DEFAULT_LEASE_TTL_S, ResultCache
from repro.sim.config import default_cache_dir, resolve_jobs
from repro.sim.grid import GridCell, GridSpec
from repro.sim.results import GridResult, RunResult
from repro.sim.sweep import _validated_payload
from repro.service.jobs import (
    ACTIVE_STATES,
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    JobHandle,
    JobStatus,
    JobStore,
)
from repro.service.worker import run_cell
from repro.trackers.registry import canonical_spec

#: Default cap on re-attempts of one cell after worker failures.
DEFAULT_MAX_RETRIES = 2
#: Base of the exponential backoff between attempts (seconds).
DEFAULT_BACKOFF_S = 0.5

CellRunner = Callable[..., Any]


class BrokerError(RuntimeError):
    """A request the broker cannot honour (unknown job, bad spec)."""


class _InlineExecutor:
    """Executor that runs the submission immediately in the caller.

    Keeps the dispatch/collect code shape identical across pools while
    making single-threaded tests (and ``step``-driven flows) fully
    deterministic.
    """

    def submit(self, fn, *args, **kwargs) -> "Future[Any]":
        future: "Future[Any]" = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # recorded, surfaced on .result()
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:  # noqa: ARG002
        pass


class _CellTask:
    """One in-flight cache fill, shared by every job that wants it."""

    def __init__(self, cell: GridCell) -> None:
        self.cell = cell
        self.attempts = 0
        self.future: Optional["Future[Any]"] = None
        self.payload: Optional[Dict[str, Any]] = None
        self.from_cache = False
        self.wall_s = 0.0
        self.error: Optional[BaseException] = None
        self._done = threading.Event()
        #: Serializes the retry loop: the first waiter drives
        #: resubmission, later waiters just block on ``_done``.
        self._drive = threading.Lock()


class _Job:
    """In-memory face of one submitted grid."""

    def __init__(self, job_id: str, spec: GridSpec, status: JobStatus) -> None:
        self.job_id = job_id
        self.spec = spec
        self.status = status
        self.cancel_event = threading.Event()
        self.thread: Optional[threading.Thread] = None
        #: Cache keys already recorded for this job (skip on re-entry).
        self.done_keys: set = set()


class SweepBroker:
    """Shards spec grids across a worker pool, cache-first."""

    def __init__(
        self,
        state_dir: Optional[Path] = None,
        cache_dir: Optional[Path] = None,
        pool: str = "process",
        workers: Optional[int] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        cell_runner: Optional[CellRunner] = None,
    ) -> None:
        if pool not in ("process", "thread", "inline"):
            raise ValueError(f"unknown pool kind {pool!r}")
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.store = JobStore(state_dir if state_dir else self.cache_dir)
        self.cache = ResultCache(self.cache_dir)
        self.pool = pool
        self.workers = resolve_jobs(workers)
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.lease_ttl_s = lease_ttl_s
        self._clock = clock
        self._sleep = sleep
        self._cell_runner = cell_runner if cell_runner is not None else run_cell
        self._jobs: Dict[str, _Job] = {}
        self._in_flight: Dict[str, _CellTask] = {}
        self._lock = threading.Lock()
        # The executor gets its own lock: _acquire_task submits while
        # holding _lock, and _get_executor must not re-take it.
        self._exec_lock = threading.Lock()
        self._executor = None

    # ------------------------------------------------------------------
    # Submission / lifecycle
    # ------------------------------------------------------------------

    def submit(self, grid: GridSpec, start: bool = True) -> str:
        """Persist a grid as a new job; returns its id.

        ``start=False`` leaves the job PENDING for :meth:`step` (tests
        and external schedulers); the default spawns the job thread.
        """
        config = grid.resolved_config()  # raises if the spec has none
        grid = grid.with_config(config)
        job_id = self._new_job_id(grid)
        status = JobStatus(
            job_id=job_id,
            state=PENDING,
            grid_key=grid.grid_key(),
            total_cells=grid.n_cells(),
            created_at=self._clock(),
            updated_at=self._clock(),
        )
        job = _Job(job_id, grid, status)
        self.store.create(job_id, grid, status)
        with self._lock:
            self._jobs[job_id] = job
        if start:
            self._start(job)
        return job_id

    def resume(self, start: bool = True) -> List[str]:
        """Adopt every persisted non-terminal job; returns their ids.

        The restart path: a broker that died mid-grid left jobs in
        PENDING/RUNNING on disk. Each is reloaded from its spec and
        re-walked; cells whose payloads already sit in the cache are
        served from it, so nothing completed is ever re-simulated.
        """
        resumed = []
        for job_id in self.store.list_jobs():
            with self._lock:
                if job_id in self._jobs:
                    continue
            status = self.store.load_status(job_id)
            if status is None or status.state not in ACTIVE_STATES:
                continue
            spec = self.store.load_spec(job_id)
            job = _Job(job_id, spec, status)
            self._reload_done(job)
            with self._lock:
                self._jobs[job_id] = job
            resumed.append(job_id)
            if start:
                self._start(job)
        return resumed

    def _reload_done(self, job: _Job) -> None:
        """Rebuild a resumed job's recorded-cell set from its manifest.

        The manifest — appended before the status snapshot — is the
        truth of which cells were already recorded; without this, a
        resumed job would re-append (and re-count) every cell.
        """
        path = self.store.manifest_path(job.job_id)
        if not path.is_file():
            return
        records, _ = read_manifest(path)
        job.done_keys = {
            r.cache_key for r in records if r.job_id == job.job_id
        }
        job.status.completed_cells = len(job.done_keys)

    def cancel(self, job_id: str) -> JobStatus:
        """Preempt a job: no further cells are dispatched for it."""
        job = self._get(job_id)
        if job.status.state in ACTIVE_STATES:
            job.cancel_event.set()
            if job.thread is None or not job.thread.is_alive():
                # Nothing is driving the job; finalize immediately.
                self._finalize(job, CANCELLED)
        return job.status

    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatching and (optionally) wait for job threads."""
        with self._lock:
            threads = [
                job.thread
                for job in self._jobs.values()
                if job.thread is not None
            ]
        with self._exec_lock:
            executor, self._executor = self._executor, None
        if wait:
            for thread in threads:
                thread.join()
        if executor is not None:
            executor.shutdown(wait=wait)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            return job.status
        status = self.store.load_status(job_id)
        if status is None:
            raise BrokerError(f"unknown job {job_id!r}")
        return status

    def jobs(self) -> List[JobStatus]:
        """Every known job's status, persisted ones included."""
        statuses: Dict[str, JobStatus] = {}
        for job_id in self.store.list_jobs():
            loaded = self.store.load_status(job_id)
            if loaded is not None:
                statuses[job_id] = loaded
        with self._lock:
            for job_id, job in self._jobs.items():
                statuses[job_id] = job.status
        return list(statuses.values())

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        """The per-cell manifest records a job has produced so far."""
        path = self.store.manifest_path(job_id)
        if not path.is_file():
            self._get(job_id)  # raise on unknown job
            return []
        records, _ = read_manifest(path)
        return [r.to_dict() for r in records if r.job_id == job_id]

    def result(self, job_id: str) -> GridResult:
        """Assemble the completed job's GridResult from the cache.

        Falls back to the persisted spec/status so results of jobs
        completed before a broker restart stay servable.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            status, spec = job.status, job.spec
        else:
            status = self.store.load_status(job_id)
            if status is None:
                raise BrokerError(f"unknown job {job_id!r}")
            spec = self.store.load_spec(job_id)
        if status.state != COMPLETED:
            raise BrokerError(
                f"job {job_id} is {status.state}, not completed"
            )
        grid: Dict[str, Dict[str, RunResult]] = {}
        for cell in spec.cells():
            payload = _validated_payload(self.cache, cell.key)
            if payload is None:
                raise BrokerError(
                    f"cache entry for cell ({cell.tracker},"
                    f" {cell.workload}) vanished; re-run the job"
                )
            grid.setdefault(cell.tracker, {})[cell.workload] = (
                RunResult.from_dict(payload)
            )
        return GridResult(grid)

    def handle(self, job_id: str) -> "LocalJobHandle":
        self.status(job_id)  # raises on unknown job, memory or disk
        return LocalJobHandle(self, job_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self, job_id: str, max_cells: Optional[int] = None) -> JobStatus:
        """Drive a job synchronously for up to ``max_cells`` cells.

        The test- and scheduler-facing entry: no thread is spawned,
        the caller's thread does the work, and the job is left RUNNING
        (resumable) if the budget runs out before the grid is full.
        """
        job = self._get(job_id)
        if job.status.state in ACTIVE_STATES:
            self._advance(job, limit=max_cells)
        return job.status

    def _start(self, job: _Job) -> None:
        thread = threading.Thread(
            target=self._advance,
            args=(job,),
            name=f"sweep-job-{job.job_id}",
            daemon=True,
        )
        job.thread = thread
        thread.start()

    def _advance(self, job: _Job, limit: Optional[int] = None) -> None:
        """Walk the job's grid: cache first, then dispatched tasks.

        Dispatch runs ahead of collection by a bounded window so the
        pool stays busy, while cells are *recorded* in deterministic
        grid order (events and progress counts are reproducible).
        """
        if job.status.state == PENDING:
            self._set_state(job, RUNNING)
        remaining = deque(
            cell for cell in job.spec.cells()
            if cell.key not in job.done_keys
        )
        window = max(2 * self.workers, 2)
        dispatched: "deque[tuple[GridCell, Optional[_CellTask]]]" = deque()
        recorded = 0
        writer = ManifestWriter(self.store.manifest_path(job.job_id))

        def top_up() -> None:
            while remaining and len(dispatched) < window:
                cell = remaining.popleft()
                started = time.perf_counter()
                payload = _validated_payload(self.cache, cell.key)
                if payload is not None:
                    task = _CellTask(cell)
                    task.payload = payload
                    task.from_cache = True
                    task.wall_s = time.perf_counter() - started
                    task._done.set()
                    dispatched.append((cell, task))
                else:
                    dispatched.append((cell, self._acquire_task(cell)))

        while True:
            if job.cancel_event.is_set():
                self._finalize(job, CANCELLED)
                return
            if limit is not None and recorded >= limit:
                return  # budget spent; job stays RUNNING on disk
            top_up()
            if not dispatched:
                break
            cell, task = dispatched.popleft()
            self._wait(task)
            if task.error is not None:
                job.status.error = (
                    f"cell ({cell.tracker}, {cell.workload}) failed"
                    f" after {task.attempts} attempts: {task.error}"
                )
                self._finalize(job, FAILED)
                return
            job.done_keys.add(cell.key)
            job.status.completed_cells += 1
            if task.from_cache:
                job.status.cache_hits += 1
            job.status.retries += max(task.attempts - 1, 0)
            recorded += 1
            result = RunResult.from_dict(task.payload)
            writer.append(
                [
                    make_record(
                        cache_key=cell.key,
                        spec=canonical_spec(cell.tracker),
                        workload=cell.workload,
                        engine=result.engine,
                        from_cache=task.from_cache,
                        wall_time_s=task.wall_s,
                        requests=result.requests,
                        end_time_ns=result.end_time_ns,
                        job_id=job.job_id,
                    )
                ]
            )
            self._touch(job)
        self._finalize(job, COMPLETED)

    # -- in-flight task management -------------------------------------

    def _acquire_task(self, cell: GridCell) -> _CellTask:
        """The shared task filling this cell's cache key.

        One canonical key maps to at most one live task, however many
        jobs want it — this is the broker-local half of in-flight
        dedup (leases extend it across processes).
        """
        with self._lock:
            task = self._in_flight.get(cell.key)
            if task is None:
                task = _CellTask(cell)
                task.future = self._submit_cell(cell)
                self._in_flight[cell.key] = task
            return task

    def _submit_cell(self, cell: GridCell) -> "Future[Any]":
        kwargs = {}
        if self.pool != "process":
            # Share the broker's cache instance so its stores /
            # leases_reclaimed counters observe worker activity.
            kwargs["cache"] = self.cache
        return self._get_executor().submit(
            self._cell_runner,
            cell.config,
            cell.tracker,
            cell.workload,
            str(self.cache_dir),
            self.lease_ttl_s,
            **kwargs,
        )

    def _wait(self, task: _CellTask) -> None:
        """Block until the task is done, driving retries if first."""
        if task._done.is_set():
            return
        with task._drive:
            while not task._done.is_set():
                try:
                    task.attempts += 1
                    payload, from_cache, wall_s = task.future.result()
                    task.payload = payload
                    task.from_cache = from_cache
                    task.wall_s = wall_s
                    task.error = None
                    task._done.set()
                except BaseException as exc:
                    if isinstance(exc, BrokenProcessPool):
                        self._discard_executor()
                    if task.attempts > self.max_retries:
                        task.error = exc
                        task._done.set()
                        break
                    # Exponential backoff before the next attempt —
                    # injectable sleep, so tests pin the schedule.
                    self._sleep(
                        self.backoff_s * (2 ** (task.attempts - 1))
                    )
                    task.future = self._submit_cell(task.cell)
        with self._lock:
            self._in_flight.pop(task.cell.key, None)

    # -- executor plumbing ---------------------------------------------

    def _get_executor(self):
        with self._exec_lock:
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def _make_executor(self):
        if self.pool == "inline":
            return _InlineExecutor()
        if self.pool == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(max_workers=self.workers)

    def _discard_executor(self) -> None:
        """Drop a broken pool so the next submit builds a fresh one."""
        with self._exec_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)

    # -- bookkeeping ---------------------------------------------------

    def _get(self, job_id: str) -> _Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise BrokerError(f"unknown job {job_id!r}")
        return job

    def _new_job_id(self, grid: GridSpec) -> str:
        return f"{grid.grid_key()[:8]}-{os.urandom(4).hex()}"

    def _set_state(self, job: _Job, state: str) -> None:
        job.status.state = state
        self._touch(job)

    def _finalize(self, job: _Job, state: str) -> None:
        self._set_state(job, state)

    def _touch(self, job: _Job) -> None:
        job.status.updated_at = self._clock()
        self.store.write_status(job.status)


class LocalJobHandle(JobHandle):
    """JobHandle over a broker living in this process."""

    def __init__(self, broker: SweepBroker, job_id: str) -> None:
        self._broker = broker
        self._job_id = job_id

    @property
    def job_id(self) -> str:
        return self._job_id

    def status(self) -> JobStatus:
        return self._broker.status(self._job_id)

    def events(self) -> Iterator[Dict[str, Any]]:
        seen = 0
        while True:
            records = self._broker.events(self._job_id)
            for record in records[seen:]:
                yield record
            seen = len(records)
            if self.status().done:
                # One last drain: events written between the read
                # above and the terminal transition.
                for record in self._broker.events(self._job_id)[seen:]:
                    yield record
                return
            time.sleep(0.05)

    def result(self, timeout: Optional[float] = None) -> GridResult:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.status().done:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {self._job_id} not done within {timeout}s"
                )
            time.sleep(0.05)
        status = self.status()
        if status.state != COMPLETED:
            raise BrokerError(
                f"job {self._job_id} finished {status.state}:"
                f" {status.error or 'no result'}"
            )
        return self._broker.result(self._job_id)

    def cancel(self) -> JobStatus:
        return self._broker.cancel(self._job_id)
