"""Blocking HTTP client of a ``hydra-sim serve`` instance.

Stdlib ``http.client`` only — the client side of the service mirrors
the server side's no-new-deps constraint. :class:`ServiceClient` maps
one method per endpoint; :class:`RemoteJobHandle` wraps a submitted
job id in the same :class:`~repro.service.jobs.JobHandle` surface the
in-process broker hands back, so callers of ``repro.api.sweep`` never
care where the grid actually runs.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.service.jobs import JobHandle, JobStatus
from repro.sim.grid import GridSpec
from repro.sim.results import GridResult

#: How often a blocking ``result()`` re-polls the job status.
DEFAULT_RESULT_POLL_S = 0.2


class ServiceError(RuntimeError):
    """An HTTP endpoint answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talks JSON to a sweep service at ``host:port``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8265,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw request plumbing ------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode() or "{}")
            return response.status, data
        finally:
            conn.close()

    def _checked(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        status, data = self._request(method, path, payload)
        if status >= 400:
            raise ServiceError(status, data.get("error", "request failed"))
        return data

    # -- endpoints ------------------------------------------------------

    def healthy(self) -> bool:
        try:
            status, _ = self._request("GET", "/healthz")
        except OSError:
            return False
        return status == 200

    def submit(self, grid: GridSpec) -> "RemoteJobHandle":
        data = self._checked("POST", "/jobs", {"grid": grid.to_dict()})
        return RemoteJobHandle(self, data["job_id"])

    def jobs(self) -> List[JobStatus]:
        data = self._checked("GET", "/jobs")
        return [JobStatus.from_dict(item) for item in data["jobs"]]

    def status(self, job_id: str) -> JobStatus:
        return JobStatus.from_dict(self._checked("GET", f"/jobs/{job_id}"))

    def cancel(self, job_id: str) -> JobStatus:
        return JobStatus.from_dict(
            self._checked("DELETE", f"/jobs/{job_id}")
        )

    def result(self, job_id: str) -> GridResult:
        data = self._checked("GET", f"/jobs/{job_id}/result")
        return GridResult.from_payload(data["grid"])

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON event tail until it completes.

        Holds one dedicated connection open; the server closes it when
        the job reaches a terminal state.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                data = json.loads(response.read().decode() or "{}")
                raise ServiceError(
                    response.status, data.get("error", "request failed")
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()


class RemoteJobHandle(JobHandle):
    """A :class:`JobHandle` backed by a :class:`ServiceClient`."""

    def __init__(self, client: ServiceClient, job_id: str) -> None:
        self._client = client
        self._job_id = job_id

    @property
    def job_id(self) -> str:
        return self._job_id

    def status(self) -> JobStatus:
        return self._client.status(self._job_id)

    def events(self) -> Iterator[Dict[str, Any]]:
        return self._client.events(self._job_id)

    def result(self, timeout: Optional[float] = None) -> GridResult:
        deadline = None if timeout is None else time.time() + timeout
        while True:
            status = self.status()
            if status.done:
                if status.state != "completed":
                    raise ServiceError(
                        409,
                        f"job {self._job_id} ended {status.state}: "
                        f"{status.error}",
                    )
                return self._client.result(self._job_id)
            if deadline is not None and time.time() > deadline:
                raise TimeoutError(
                    f"job {self._job_id} still {status.state} "
                    f"after {timeout}s"
                )
            time.sleep(DEFAULT_RESULT_POLL_S)

    def cancel(self) -> JobStatus:
        return self._client.cancel(self._job_id)
