"""Asyncio HTTP/JSON front-end of the sweep service.

A deliberately small stdlib-only server (``asyncio.start_server`` +
hand-parsed HTTP/1.1 — no web framework is baked into the container)
exposing the broker:

    POST   /jobs               submit a grid   -> 201 {"job_id": ...}
    GET    /jobs               list jobs       -> 200 {"jobs": [...]}
    GET    /jobs/<id>          status/progress -> 200 JobStatus
    GET    /jobs/<id>/events   stream per-cell manifest lines (NDJSON,
                               connection-close delimited) as they land
    GET    /jobs/<id>/result   fetch the GridResult payload
    DELETE /jobs/<id>          preempt the job
    GET    /healthz            liveness probe

The submit body is ``{"grid": GridSpec.to_dict()}`` — the grid must
carry its ``config`` (the service cannot guess one). Every
non-streaming route goes through :meth:`SweepService.dispatch`, a
plain ``(method, path, body) -> (status, payload)`` function, so
handlers unit-test without sockets; the asyncio layer only parses
bytes and streams events.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.sim.grid import GridSpec
from repro.service.broker import BrokerError, SweepBroker

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8265

#: How often the event stream re-polls the job's manifest.
DEFAULT_EVENT_POLL_S = 0.1

_JSON_HEADERS = "Content-Type: application/json\r\nConnection: close\r\n"


class SweepService:
    """Routes HTTP requests onto a :class:`SweepBroker`."""

    def __init__(
        self,
        broker: SweepBroker,
        event_poll_s: float = DEFAULT_EVENT_POLL_S,
    ) -> None:
        self.broker = broker
        self.event_poll_s = event_poll_s

    # ------------------------------------------------------------------
    # Socket-free request dispatch (the unit-testable surface)
    # ------------------------------------------------------------------

    def dispatch(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, Dict[str, Any]]:
        """Handle one non-streaming request; returns (status, payload)."""
        parts = [p for p in path.split("?", 1)[0].split("/") if p]
        try:
            if parts == ["healthz"]:
                if method == "GET":
                    return 200, {"ok": True}
                return 405, {"error": "method not allowed"}
            if parts == ["jobs"]:
                if method == "POST":
                    return self._submit(body)
                if method == "GET":
                    return 200, {
                        "jobs": [s.to_dict() for s in self.broker.jobs()]
                    }
                return 405, {"error": "method not allowed"}
            if len(parts) == 2 and parts[0] == "jobs":
                if method == "GET":
                    return 200, self.broker.status(parts[1]).to_dict()
                if method == "DELETE":
                    return 200, self.broker.cancel(parts[1]).to_dict()
                return 405, {"error": "method not allowed"}
            if len(parts) == 3 and parts[0] == "jobs" and method == "GET":
                if parts[2] == "result":
                    return self._result(parts[1])
                if parts[2] == "events":
                    # Snapshot form; the async layer streams instead.
                    return 200, {"events": self.broker.events(parts[1])}
        except BrokerError as exc:
            if "unknown job" in str(exc):
                return 404, {"error": str(exc)}
            return 409, {"error": str(exc)}
        return 404, {"error": f"no route for {method} /{'/'.join(parts)}"}

    def _submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            data = json.loads(body.decode() or "{}")
            grid = GridSpec.from_dict(data["grid"])
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"error": f"bad grid payload: {exc}"}
        try:
            job_id = self.broker.submit(grid)
        except ValueError as exc:  # e.g. a grid without a config
            return 400, {"error": str(exc)}
        status = self.broker.status(job_id)
        return 201, {
            "job_id": job_id,
            "grid_key": status.grid_key,
            "total_cells": status.total_cells,
        }

    def _result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        grid = self.broker.result(job_id)  # BrokerError if not done
        return 200, {"job_id": job_id, "grid": grid.to_payload()}

    # ------------------------------------------------------------------
    # Asyncio layer
    # ------------------------------------------------------------------

    async def handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            parts = [p for p in path.split("?", 1)[0].split("/") if p]
            if (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "events"
            ):
                await self._stream_events(writer, parts[1])
            else:
                status, payload = self.dispatch(method, path, body)
                self._write_response(writer, status, payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, path, _version = request_line.decode().split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        writer.write(
            f"HTTP/1.1 {status} {_reason(status)}\r\n{_JSON_HEADERS}"
            f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        """NDJSON event tail: manifest lines as the broker lands them.

        Connection-close delimited (no Content-Length): the stream
        ends when the job reaches a terminal state and every written
        event has been delivered.
        """
        try:
            self.broker.status(job_id)
        except BrokerError as exc:
            self._write_response(writer, 404, {"error": str(exc)})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            events = self.broker.events(job_id)
            for event in events[sent:]:
                writer.write(
                    json.dumps(event, sort_keys=True).encode() + b"\n"
                )
            sent = len(events)
            await writer.drain()
            if self.broker.status(job_id).done:
                # Final drain for records that landed after the read.
                events = self.broker.events(job_id)
                for event in events[sent:]:
                    writer.write(
                        json.dumps(event, sort_keys=True).encode() + b"\n"
                    )
                await writer.drain()
                return
            await asyncio.sleep(self.event_poll_s)


def _reason(status: int) -> str:
    return {
        200: "OK",
        201: "Created",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        409: "Conflict",
    }.get(status, "OK")


async def serve_async(
    broker: SweepBroker,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    event_poll_s: float = DEFAULT_EVENT_POLL_S,
) -> "asyncio.AbstractServer":
    """Bind the service; caller drives the returned server."""
    service = SweepService(broker, event_poll_s=event_poll_s)
    return await asyncio.start_server(service.handle_client, host, port)


def serve_forever(
    broker: SweepBroker,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> None:
    """Blocking entry point used by ``hydra-sim serve``."""

    async def _main() -> None:
        server = await serve_async(broker, host, port)
        addrs = ", ".join(
            str(sock.getsockname()) for sock in server.sockets or ()
        )
        print(f"hydra-sim serve: listening on {addrs}")
        resumed = broker.resume()
        if resumed:
            print(f"resumed {len(resumed)} interrupted job(s)")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("hydra-sim serve: shutting down")
        broker.shutdown(wait=False)
