"""Job records of the sweep service: states, status, persistence.

A *job* is one submitted :class:`~repro.sim.grid.GridSpec`. Its
durable footprint is a directory under the broker's state dir::

    <state_dir>/jobs/<job_id>/
        spec.json       # the GridSpec, canonical JSON (written once)
        status.json     # JobStatus snapshot (atomic replace per update)
        manifest.jsonl  # one ManifestRecord per produced cell (events)

The *result cache* — not this directory — is the system of record for
cell payloads: a broker that dies mid-job restarts, re-reads
``spec.json``, and re-walks the grid; every cell already in the cache
is served from it (zero re-simulation), so the job reaches the exact
same :class:`~repro.sim.results.GridResult` bytes an uninterrupted run
would have produced.

State machine (DESIGN.md §15)::

    PENDING ──start──▶ RUNNING ──all cells done──▶ COMPLETED
       │                  │ ├──cancel──▶ CANCELLED
       └────cancel────────┘ └──cell exhausts retries──▶ FAILED

Terminal states (COMPLETED / FAILED / CANCELLED) never transition
again; a resumed broker re-enters RUNNING only from PENDING/RUNNING.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.grid import GridSpec
from repro.sim.results import GridResult

# -- states ------------------------------------------------------------

PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can still make progress from (what ``resume`` picks up).
ACTIVE_STATES = (PENDING, RUNNING)
#: States a job never leaves.
TERMINAL_STATES = (COMPLETED, FAILED, CANCELLED)


@dataclass
class JobStatus:
    """One job's externally visible progress snapshot."""

    job_id: str
    state: str
    grid_key: str
    total_cells: int
    completed_cells: int = 0
    cache_hits: int = 0
    retries: int = 0
    error: str = ""
    created_at: float = 0.0
    updated_at: float = 0.0

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "JobStatus":
        known = {f.name for f in fields(JobStatus)}
        return JobStatus(**{k: v for k, v in data.items() if k in known})


# -- persistence -------------------------------------------------------


def atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Same-directory temp file + ``os.replace`` (the cache's idiom)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class JobStore:
    """Directory-backed persistence of job specs and statuses."""

    def __init__(self, state_dir: Path) -> None:
        self.jobs_dir = Path(state_dir) / "jobs"

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def spec_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "spec.json"

    def status_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "status.json"

    def manifest_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "manifest.jsonl"

    def create(self, job_id: str, spec: GridSpec, status: JobStatus) -> None:
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.spec_path(job_id), spec.to_dict())
        self.write_status(status)

    def write_status(self, status: JobStatus) -> None:
        atomic_write_json(self.status_path(status.job_id), status.to_dict())

    def load_spec(self, job_id: str) -> GridSpec:
        return GridSpec.from_dict(
            json.loads(self.spec_path(job_id).read_text())
        )

    def load_status(self, job_id: str) -> Optional[JobStatus]:
        try:
            data = json.loads(self.status_path(job_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return JobStatus.from_dict(data)

    def list_jobs(self) -> List[str]:
        """Every persisted job id, oldest first (by status mtime)."""
        if not self.jobs_dir.is_dir():
            return []
        entries = []
        for child in self.jobs_dir.iterdir():
            status = child / "status.json"
            if status.is_file():
                entries.append((status.stat().st_mtime, child.name))
        return [name for _, name in sorted(entries)]


# -- the handle every front-end hands back -----------------------------


class JobHandle:
    """Uniform view of a submitted sweep job, local or remote.

    ``repro.api.sweep`` returns one of these whether the grid runs in
    an in-process broker or on a remote ``hydra-sim serve`` instance:
    ``status()`` / ``events()`` / ``result()`` / ``cancel()`` are the
    whole surface.
    """

    @property
    def job_id(self) -> str:  # pragma: no cover - trivial override
        raise NotImplementedError

    def status(self) -> JobStatus:
        raise NotImplementedError

    def events(self) -> Iterator[Dict[str, Any]]:
        """Per-cell manifest records, yielded as they land.

        The iterator finishes once the job reaches a terminal state
        and every already-written event has been delivered.
        """
        raise NotImplementedError

    def result(self, timeout: Optional[float] = None) -> GridResult:
        """Block until the job completes, then return its grid."""
        raise NotImplementedError

    def cancel(self) -> JobStatus:
        raise NotImplementedError

    def done(self) -> bool:
        return self.status().done
