"""Sweep service: shardable job broker + asyncio HTTP front-end.

The package splits along the trust boundary of the architecture:

- :mod:`repro.service.worker` — the disposable unit: fill one cache
  entry, lease-guarded.
- :mod:`repro.service.broker` — shards grids across a pool, dedups
  in-flight cells, retries with backoff, persists resumable job state.
- :mod:`repro.service.jobs` — job states, status records, persistence,
  and the :class:`JobHandle` surface front-ends hand back.
- :mod:`repro.service.http` — stdlib-asyncio HTTP/JSON endpoints.
- :mod:`repro.service.client` — blocking ``http.client`` consumer of
  those endpoints (:class:`ServiceClient` / :class:`RemoteJobHandle`).
"""

from repro.service.broker import BrokerError, LocalJobHandle, SweepBroker
from repro.service.client import RemoteJobHandle, ServiceClient, ServiceError
from repro.service.http import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    SweepService,
    serve_forever,
)
from repro.service.jobs import (
    ACTIVE_STATES,
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    JobHandle,
    JobStatus,
    JobStore,
)
from repro.service.worker import run_cell, worker_identity

__all__ = [
    "ACTIVE_STATES",
    "BrokerError",
    "CANCELLED",
    "COMPLETED",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "FAILED",
    "JobHandle",
    "JobStatus",
    "JobStore",
    "LocalJobHandle",
    "PENDING",
    "RUNNING",
    "RemoteJobHandle",
    "ServiceClient",
    "ServiceError",
    "SweepBroker",
    "SweepService",
    "TERMINAL_STATES",
    "run_cell",
    "serve_forever",
    "worker_identity",
]
