"""The sweep service's cell worker: one cache fill, lease-guarded.

This is the disposable unit of the service architecture: a worker is
handed a fully self-describing cell — a picklable
(:class:`~repro.sim.config.SystemConfig`, tracker spec, workload name)
triple plus the shared cache directory — and leaves exactly one
content-addressed entry in the :class:`~repro.sim.cache.ResultCache`.
Everything else (job state, manifests, retries) lives in the broker;
a worker that crashes loses nothing but its own wall time.

The lease protocol (DESIGN.md §15) keeps racing workers from
duplicating simulations: whoever atomically creates ``<key>.lease``
simulates and stores; everyone else polls the cache until the entry
lands. A lease whose holder crashed expires after its TTL and is
reclaimed, so a dead worker delays a cell, never wedges it. The
protocol is an optimization — if it ever double-grants, both winners
compute the same deterministic payload and the atomic store keeps the
cache consistent.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.sim.cache import DEFAULT_LEASE_TTL_S, ResultCache
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate_workload

#: How often a worker that lost the lease re-polls the cache for the
#: winner's entry.
DEFAULT_POLL_S = 0.05


def worker_identity() -> str:
    """A lease-owner string unique to this worker invocation."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


def run_cell(
    config: SystemConfig,
    tracker: str,
    workload: str,
    cache_dir: Optional[str],
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = DEFAULT_POLL_S,
    cache: Optional[ResultCache] = None,
) -> Tuple[Dict[str, Any], bool, float]:
    """Produce one cell's payload through the shared cache.

    Returns ``(payload, from_cache, wall_s)`` exactly like the
    parallel sweep's work unit, but lease-guarded: concurrent workers
    (of this broker, another broker, or another machine sharing the
    cache directory) fill each unique key once.

    In-process pools pass the broker's own ``cache`` instance so its
    ``stores`` / ``leases_reclaimed`` counters observe worker activity;
    process pools pass only ``cache_dir`` (picklable) and each worker
    builds its own view.
    """
    from repro.sim.sweep import _validated_payload, cell_key

    started = time.perf_counter()
    if cache_dir is None and cache is None:
        result = simulate_workload(config, tracker, workload)
        return result.to_dict(), False, time.perf_counter() - started

    if cache is None:
        cache = ResultCache(Path(cache_dir))
    key = cell_key(config, tracker, workload)
    owner = worker_identity()
    while True:
        payload = _validated_payload(cache, key)
        if payload is not None:
            return payload, True, time.perf_counter() - started
        if cache.lease(key, owner, ttl_s=lease_ttl_s):
            try:
                result = simulate_workload(config, tracker, workload)
                payload = result.to_dict()
                cache.store(key, payload)
                return payload, False, time.perf_counter() - started
            finally:
                cache.release(key, owner)
        # Someone else holds the lease: wait for their store to land
        # (or for the lease to expire so the loop reclaims it).
        time.sleep(poll_s)
