"""``python -m repro`` — same front-end as the ``hydra-sim`` script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
