"""The Hydra hybrid tracker (the paper's core contribution, §4).

Every activation takes one of three paths (Figure 4):

1. **GCT-only** (common case, ~90.7%): the row-group's counter is
   below T_G; increment it and stop. If this increment *reaches* T_G,
   all RCT entries of the group are initialized to T_G (two line reads
   plus two line writes of metadata traffic).
2. **RCC hit** (~9.0%): the group is saturated, and the row's private
   counter is cached on-chip; increment it locally. Reaching T_H
   issues a mitigation and resets the counter.
3. **RCT access** (~0.3%): as (2) but the counter must be fetched from
   DRAM and installed in the RCC, writing back a (dirty) victim.

The rows that store the RCT itself are guarded by a dedicated SRAM
counter array (RIT-ACT, §5.2.2) so an adversary cannot hammer the
counter rows unseen.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left as _bisect_left
from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.core.config import HydraConfig
from repro.core.gct import GroupCountTable
from repro.core.randomize import FeistelPermutation
from repro.core.rcc import RowCountCache
from repro.core.rct import RowCountTable
from repro.trackers.base import ActivationTracker, MetaAccess, TrackerResponse
from repro.trackers.registry import (
    RCC_ENTRY_BYTES,
    Param,
    TrackerContext,
    register_tracker,
)


@dataclass
class HydraStats:
    """Per-run accounting (drives Figure 6 and the power analysis)."""

    gct_only: int = 0
    rcc_hits: int = 0
    rct_accesses: int = 0
    group_inits: int = 0
    mitigations: int = 0
    meta_read_lines: int = 0
    meta_write_lines: int = 0
    rit_act_activations: int = 0
    window_resets: int = 0

    @property
    def total_updates(self) -> int:
        return self.gct_only + self.rcc_hits + self.rct_accesses

    def distribution(self) -> Dict[str, float]:
        """Fraction of activation updates satisfied at each level."""
        total = self.total_updates
        if total == 0:
            return {"gct_only": 0.0, "rcc_hit": 0.0, "rct_access": 0.0}
        return {
            "gct_only": self.gct_only / total,
            "rcc_hit": self.rcc_hits / total,
            "rct_access": self.rct_accesses / total,
        }


class HydraTracker(ActivationTracker):
    """Hybrid GCT + RCC + RCT activation tracker."""

    name = "hydra"

    def __init__(self, config: Optional[HydraConfig] = None) -> None:
        # A dataclass default argument would be one instance shared by
        # every default-constructed tracker; build a fresh one instead.
        if config is None:
            config = HydraConfig()
        self.config = config
        self.th = config.th
        self.tg = config.tg
        self._group_size = config.group_size
        self._group_mask = ~(config.group_size - 1)
        self.gct: Optional[GroupCountTable] = (
            GroupCountTable(config.gct_entries, config.tg, config.group_size)
            if config.enable_gct
            else None
        )
        self.rcc: Optional[RowCountCache] = (
            RowCountCache(config.rcc_entries, config.rcc_ways)
            if config.enable_rcc
            else None
        )
        counter_bytes = max(1, (self.th.bit_length() + 7) // 8)
        self.rct = RowCountTable(config.geometry, counter_bytes=counter_bytes)
        self._permutation: Optional[FeistelPermutation] = (
            FeistelPermutation(config.geometry.total_rows, config.mapping_seed)
            if config.randomize_mapping
            else None
        )
        self._rit_act: Dict[int, int] = {}
        self.stats = HydraStats()
        # Scalar copies for the per-activation path: the meta-row guard
        # runs on every single activation, so it reads two ints off
        # ``self`` instead of calling into the RCT. Likewise the GCT's
        # counter array and shift are hoisted here so the ~90% common
        # case is a direct array probe; ``GroupCountTable.reset`` keeps
        # the backing array's identity, so the reference stays valid
        # across window resets.
        self._rows_per_bank = config.geometry.rows_per_bank
        self._meta_base_local = self.rct.meta_base_local
        self._gct_counts = self.gct._counts if self.gct is not None else None
        self._gct_shift = (
            self.gct._group_shift if self.gct is not None else 0
        )
        if not config.enable_gct:
            self.name = "hydra-nogct"
        elif not config.enable_rcc:
            self.name = "hydra-norcc"

    # ------------------------------------------------------------------
    # ActivationTracker interface
    # ------------------------------------------------------------------

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        # Inlined self.rct.is_meta_row(row_id) — this guard runs on
        # every activation.
        if row_id % self._rows_per_bank >= self._meta_base_local:
            return self._count_meta_row_activation(row_id)
        # Footnote 4: with randomized mapping, all internal indexing
        # (GCT entry, RCC tag, RCT slot) uses the permuted id, while
        # mitigations still name the physical row in hand.
        permutation = self._permutation
        key = permutation.permute(row_id) if permutation is not None else row_id
        gct = self.gct
        if gct is not None:
            # ``gct.update(key)`` inlined: the below-T_G increment is
            # the ~90% common case of the whole tracker, worth a direct
            # array probe instead of a method call.
            counts = self._gct_counts
            group = key >> self._gct_shift
            value = counts[group]
            tg = self.tg
            if value < tg:
                value += 1
                counts[group] = value
                if value < tg:
                    self.stats.gct_only += 1
                    return None
                # This update saturated the group: switch it to
                # per-row tracking by initializing its RCT entries.
                gct.saturated_groups += 1
                stats = self.stats
                stats.gct_only += 1
                stats.group_inits += 1
                first_row = key & self._group_mask
                meta = self.rct.init_group(first_row, self._group_size, tg)
                self._account_meta(meta)
                return TrackerResponse(meta_accesses=tuple(meta))
            # value >= T_G: group saturated on an earlier update.
        return self._per_row_update(key, row_id)

    def on_window_reset(self) -> None:
        """Reset SRAM structures every tracking window (§4.6)."""
        if self.gct is not None:
            self.gct.reset()
        else:
            # Without a GCT there is no lazy re-initialization path, so
            # the per-row state itself must be reset (models entry
            # versioning; costless in time, like the paper's design).
            self.rct.reset_all()
        if self.rcc is not None:
            self.rcc.reset()
        if self._permutation is not None:
            # Footnote 4: change the cipher key every window so group
            # membership cannot be learned across windows.
            self._permutation = self._permutation.rekeyed(
                self.config.mapping_seed + self.stats.window_resets + 1
            )
        self._rit_act.clear()
        self.stats.window_resets += 1

    def sram_bytes(self) -> int:
        total = 0
        if self.gct is not None:
            total += self.gct.sram_bytes()
        if self.rcc is not None:
            total += self.rcc.sram_bytes()
        total += self.rct.total_meta_rows  # 1-byte RIT-ACT counters
        return total

    def dram_reserved_bytes(self) -> int:
        return self.rct.dram_reserved_bytes()

    @property
    def mitigations(self) -> int:
        return self.stats.mitigations

    def extra_stats(self) -> Dict[str, object]:
        """Figure 6's distribution plus metadata-path counters."""
        return {
            "distribution": self.stats.distribution(),
            "group_inits": self.stats.group_inits,
            "rit_act_activations": self.stats.rit_act_activations,
        }

    def obs_snapshot(self) -> Dict[str, float]:
        """Cumulative counters for the per-window series recorder.

        ``HydraStats`` survives window resets (only the SRAM
        structures clear), so every field differences cleanly into
        per-window deltas: the three update levels reproduce Figure 6
        window by window, and ``rcc_hits`` vs ``rct_accesses`` gives
        the per-window RCC hit rate.
        """
        stats = self.stats
        return {
            "tracker_mitigations": float(stats.mitigations),
            "hydra_gct_only": float(stats.gct_only),
            "hydra_rcc_hits": float(stats.rcc_hits),
            "hydra_rct_accesses": float(stats.rct_accesses),
            "hydra_group_inits": float(stats.group_inits),
            "hydra_meta_read_lines": float(stats.meta_read_lines),
            "hydra_meta_write_lines": float(stats.meta_write_lines),
            "hydra_rit_act_activations": float(stats.rit_act_activations),
        }

    def publish_metrics(self, registry) -> None:
        """Publish tracker totals plus each structure's own metrics."""
        super().publish_metrics(registry)
        for name, value in self.obs_snapshot().items():
            if name == "tracker_mitigations":
                continue  # already published by the base class
            registry.counter(name, f"HydraStats.{name}").inc(int(value))
        if self.gct is not None:
            self.gct.publish_metrics(registry)
        if self.rcc is not None:
            self.rcc.publish_metrics(registry)
        self.rct.publish_metrics(registry)

    # ------------------------------------------------------------------
    # Batch hook (engine=vector)
    # ------------------------------------------------------------------

    def apply_batch(self, rows, counts=None, commit: bool = True):
        """Vectorized GCT/RCC updates; everything else escapes.

        Two activation classes are order-independent and commit as a
        batch (see :meth:`ActivationTracker.apply_batch` for the
        contract):

        - **GCT-only increments** for groups that stay below T_G even
          after absorbing the whole batch (integer adds commute);
        - **RCC-resident increments** for rows of saturated groups
          whose counter stays below T_H (each is ``count += n`` plus
          an SRRIP promotion to RRPV 0 — the same final state scalar
          replay produces, since nothing else touches the entry).

        Escapes (mask ``True``): RIT-ACT meta rows, groups the batch
        would saturate (the GCT→RCT spill emits metadata traffic),
        RCC misses (RCT fetch + install + possible writeback), and
        resident counters the batch could push to T_H (mitigation).
        The ablation/randomized variants return ``None``: without the
        GCT every update is metadata traffic, and footnote-4 mapping
        permutes per activation — nothing worth batching.
        """
        if (
            self.gct is None
            or self.rcc is None
            or self._permutation is not None
            or not isinstance(self.gct._counts, array)
        ):
            return None
        rows = np.asarray(rows, dtype=np.int64)
        n = rows.size
        mask = np.zeros(n, dtype=bool)
        if n == 0:
            return mask
        meta_m = rows % self._rows_per_bank >= self._meta_base_local
        groups = rows >> self._gct_shift
        gview = self._gct_view()
        ug, inv = np.unique(groups, return_inverse=True)
        if counts is None:
            cnt = np.bincount(inv, minlength=len(ug))
        else:
            cnt = np.bincount(
                inv, weights=np.asarray(counts, dtype=np.float64)
            ).astype(np.int64)
        base_u = gview[ug]
        tg = self.tg
        sat_u = base_u >= tg
        # Conservative: meta-row activations never touch the GCT, but
        # counting them toward the group total only widens the danger
        # set (extra escapes, never a missed one).
        danger_u = ~sat_u & (base_u + cnt >= tg)
        sat = sat_u[inv]
        mask = meta_m | (danger_u[inv] & ~meta_m)
        # Saturated groups: per-row RCC residency / threshold check.
        rcc = self.rcc
        sets = rcc.sets
        data = rcc._data
        th = self.th
        resident: dict = {}
        per_row: dict = {}
        sat_idx = np.nonzero(sat & ~meta_m)[0]
        if sat_idx.size:
            srows = rows[sat_idx].tolist()
            if counts is None:
                for row in srows:
                    per_row[row] = per_row.get(row, 0) + 1
            else:
                for row, add in zip(srows, counts[sat_idx].tolist()):
                    per_row[row] = per_row.get(row, 0) + int(add)
            for row in per_row:
                resident[row] = data[row % sets].get(row)
            flag = []
            for i, row in zip(sat_idx.tolist(), srows):
                entry = resident[row]
                if entry is None or entry[0] + per_row[row] >= th:
                    flag.append(i)
            if flag:
                mask[flag] = True
        if not commit:
            return mask
        if mask.any():
            return mask
        safe_u = ~sat_u  # all-False mask: no meta rows, no danger groups
        n_gct = int(cnt[safe_u].sum())
        if n_gct:
            gview[ug[safe_u]] += cnt[safe_u]
            self.stats.gct_only += n_gct
        n_rcc = 0
        for row, add in per_row.items():
            entry = resident[row]
            entry[0] += add
            entry[1] = 0  # SRRIP promotion, as increment_if_present does
            n_rcc += add
        if n_rcc:
            rcc.hits += n_rcc
            self.stats.rcc_hits += n_rcc
        return mask

    def plan_batch(self, rows):
        """Slab plan for ``engine=vector`` (specialized ``apply_batch``).

        Precomputes per-slab static structure once — group ids, RIT-ACT
        meta positions, and each position's running occurrence index
        within its group — so ``classify``/``commit`` segments cost a
        handful of array ops on the segment instead of re-deriving
        ``np.unique`` over the window every call. Classification is
        exact up to row-buffer hits (counted as potential increments,
        which only moves an escape earlier — the scalar replay then
        resolves it): a group escapes at the precise position where its
        live counter plus the occurrences since the walk frontier
        reaches T_G, and a saturated row escapes at the occurrence that
        would miss the RCC or reach T_H. Gated exactly like
        :meth:`apply_batch`.
        """
        if (
            self.gct is None
            or self.rcc is None
            or self._permutation is not None
            or not isinstance(self.gct._counts, array)
        ):
            return None
        return _HydraBatchPlan(self, np.asarray(rows, dtype=np.int64))

    def _gct_view(self) -> np.ndarray:
        """Writable int64 view of the GCT's backing array.

        The buffer is ``array('Q')`` (uint64); reinterpreting as int64
        is bit-exact because group counters stay far below 2**63. The
        signed view lets the batch paths index and compare without the
        ``astype`` copy every segment. ``GroupCountTable.reset``
        preserves the buffer's identity, so the view stays valid
        across window resets.
        """
        view = getattr(self, "_gct_np", None)
        if view is None:
            view = np.frombuffer(self.gct._counts, dtype=np.int64)
            self._gct_np = view
        return view

    # ------------------------------------------------------------------
    # Internal paths
    # ------------------------------------------------------------------

    def _per_row_update(
        self, key: int, physical_row: int
    ) -> Optional[TrackerResponse]:
        """Per-row tracking: ``key`` indexes the structures,
        ``physical_row`` is what a mitigation must refresh around
        (they differ only under randomized mapping)."""
        rcc = self.rcc
        if rcc is None:
            return self._rct_read_modify_write(key, physical_row)
        # Fused lookup + increment: one dict probe on the ~9% hit path
        # (equivalent to lookup(); write(count + 1) — see RowCountCache).
        count = rcc.increment_if_present(key)
        if count is not None:
            self.stats.rcc_hits += 1
            if count >= self.th:
                rcc.write(key, 0)
                self.stats.mitigations += 1
                return TrackerResponse(mitigate_rows=(physical_row,))
            return None
        # RCC miss: fetch the counter line from the RCT in DRAM.
        self.stats.rct_accesses += 1
        value = self.rct.read(key)
        meta = [MetaAccess(self.rct.meta_row_of(key), 1, False)]
        victim = self.rcc.install(key, value)
        if victim is not None:
            victim_key, victim_count = victim
            self.rct.write(victim_key, victim_count)
            victim_meta_row = self.rct.meta_row_of(victim_key)
            meta.append(MetaAccess(victim_meta_row, 1, False))
            meta.append(MetaAccess(victim_meta_row, 1, True))
        self._account_meta(meta)
        count = value + 1
        if count >= self.th:
            self.rcc.write(key, 0)
            self.stats.mitigations += 1
            return TrackerResponse(
                mitigate_rows=(physical_row,), meta_accesses=tuple(meta)
            )
        self.rcc.write(key, count)
        return TrackerResponse(meta_accesses=tuple(meta))

    def _rct_read_modify_write(
        self, key: int, physical_row: int
    ) -> TrackerResponse:
        """Hydra-NoRCC: every per-row update is a DRAM RMW."""
        self.stats.rct_accesses += 1
        meta_row = self.rct.meta_row_of(key)
        meta = (
            MetaAccess(meta_row, 1, False),
            MetaAccess(meta_row, 1, True),
        )
        self._account_meta(meta)
        value = self.rct.read(key) + 1
        if value >= self.th:
            self.rct.write(key, 0)
            self.stats.mitigations += 1
            return TrackerResponse(
                mitigate_rows=(physical_row,), meta_accesses=meta
            )
        self.rct.write(key, value)
        return TrackerResponse(meta_accesses=meta)

    def _count_meta_row_activation(self, row_id: int) -> Optional[TrackerResponse]:
        """RIT-ACT: SRAM counters guarding the RCT's own DRAM rows."""
        self.stats.rit_act_activations += 1
        count = self._rit_act.get(row_id, 0) + 1
        if count >= self.th:
            self._rit_act[row_id] = 0
            self.stats.mitigations += 1
            return TrackerResponse(mitigate_rows=(row_id,))
        self._rit_act[row_id] = count
        return None

    def _account_meta(self, meta) -> None:
        for access in meta:
            if access.is_write:
                self.stats.meta_write_lines += access.n_lines
            else:
                self.stats.meta_read_lines += access.n_lines


class _HydraBatchPlan:
    """Per-slab batch plan backing :meth:`HydraTracker.plan_batch`.

    Static per slab: ``_groups`` (GCT index per position), ``_meta_idx``
    (RIT-ACT guarded positions, always escapes), and ``_occ`` — the
    1-based occurrence index of each position within its group, so the
    number of activations a group absorbs between the walk frontier and
    position ``p`` is ``occ[p] - consumed[group]``. ``consumed`` tracks,
    per group, the occurrence index last applied to the tracker; it is
    advanced by ``commit`` and lazily repaired in ``classify`` for
    positions the engine replayed scalarly (escapes, bind drains), so
    the crossing test stays exact rather than drifting conservative.
    """

    __slots__ = (
        "_tracker",
        "_rows",
        "_groups",
        "_occ",
        "_consumed",
        "_consumed_a",
        "_meta_idx",
        "_done",
        "_ana",
        "_groups_l",
        "_occ_l",
        "_rows_l",
    )

    #: Classification scan blocks, in requests.  ``classify`` scans
    #: its window block by block, stopping at the first escape: the
    #: median escape distance is a few dozen requests, so gathering
    #: the whole window up front would re-gather every element many
    #: times over as escapes restart classification just past
    #: themselves.  The block grows geometrically from ``BLOCK``
    #: (sized for the common short escape) up to ``BLOCK_MAX`` so
    #: escape-free stretches still classify in a handful of array
    #: ops, and always within one *call* (the scan continues across
    #: blocks), so no extra segment commits are introduced.
    BLOCK = 96
    BLOCK_MAX = 384

    def __init__(self, tracker: "HydraTracker", rows: np.ndarray) -> None:
        self._tracker = tracker
        self._rows = rows
        n = rows.size
        groups = rows >> tracker._gct_shift
        self._groups = groups
        meta_m = rows % tracker._rows_per_bank >= tracker._meta_base_local
        self._meta_idx = np.nonzero(meta_m)[0].tolist()
        if n:
            order = np.argsort(groups, kind="stable")
            sg = groups[order]
            idx = np.arange(n, dtype=np.int64)
            run_start = np.empty(n, dtype=bool)
            run_start[0] = True
            run_start[1:] = sg[1:] != sg[:-1]
            first = np.maximum.accumulate(np.where(run_start, idx, 0))
            occ = np.empty(n, dtype=np.int64)
            occ[order] = idx - first + 1
        else:
            occ = np.empty(0, dtype=np.int64)
        self._occ = occ
        # Stdlib-array backing with a numpy view on top: the vector
        # paths scatter/gather through the view, the small-segment
        # scalar path in ``commit`` indexes the array directly (a
        # stdlib ``array`` scalar access skips the numpy boxing cost).
        self._consumed_a = array(
            "q", bytes(8 * tracker._gct_view().size)
        )
        self._consumed = np.frombuffer(self._consumed_a, dtype=np.int64)
        self._done = 0
        self._ana = None
        self._groups_l = None  # lazy tolist caches for the scalar path
        self._occ_l = None
        self._rows_l = None

    def classify(self, lo: int, hi: int):
        """First escape in the checked prefix → ``(index | -1, checked)``."""
        groups = self._groups
        occ = self._occ
        consumed = self._consumed
        done = self._done
        if lo > done:
            # Positions in [done, lo) were applied scalarly (escape
            # replays, drains): fold them into the frontier so their
            # occurrences are not double-counted as still pending.
            consumed[groups[done:lo]] = occ[done:lo]
            self._done = lo
        first_meta = -1
        mi = self._meta_idx
        if mi:
            k = _bisect_left(mi, lo)
            if k < len(mi) and mi[k] < hi:
                first_meta = mi[k]
        hi_lim = first_meta if first_meta >= 0 else hi
        tracker = self._tracker
        gview = tracker._gct_view()
        tg = tracker.tg
        rows = self._rows
        rcc = tracker.rcc
        data = rcc._data
        sets = rcc.sets
        th = tracker.th
        # The saturation mask of the first block is cached: commit of
        # [lo, e) follows immediately with no tracker mutation in
        # between, so it can reuse it instead of re-gathering the GCT
        # (commit re-gathers itself on the rare multi-block segment).
        self._ana = None
        per_row: dict = {}
        blo = lo
        blk = self.BLOCK
        blk_max = self.BLOCK_MAX
        while blo < hi_lim:
            bhi = blo + blk
            if blk < blk_max:
                blk *= 4
            if bhi > hi_lim:
                bhi = hi_lim
            seg_g = groups[blo:bhi]
            base = gview[seg_g]
            pending = occ[blo:bhi] - consumed[seg_g]
            sat = base >= tg
            cross = ~sat & (base + pending >= tg)
            cnz = cross.nonzero()[0]
            esc_cross = blo + int(cnz[0]) if cnz.size else -1
            esc_rcc = -1
            snz = sat.nonzero()[0]
            if snz.size:
                if esc_cross >= 0:
                    snz = snz[: int(snz.searchsorted(esc_cross - blo))]
                for rel, row in zip(
                    snz.tolist(), rows[blo + snz].tolist()
                ):
                    state = per_row.get(row)
                    if state is None:
                        entry = data[row % sets].get(row)
                        if entry is None:  # RCC miss: RCT traffic
                            esc_rcc = blo + rel
                            break
                        state = [entry[0], 0]
                        per_row[row] = state
                    state[1] += 1
                    if state[0] + state[1] >= th:  # would mitigate
                        esc_rcc = blo + rel
                        break
            if blo == lo:
                self._ana = (lo, bhi, sat)
            if esc_cross >= 0 or esc_rcc >= 0:
                if esc_cross < 0 or (0 <= esc_rcc < esc_cross):
                    return esc_rcc, hi
                return esc_cross, hi
            blo = bhi
        return first_meta, hi

    def commit(self, lo: int, hi: int, skip) -> None:
        """Apply [lo, hi) minus the ``skip`` positions (row hits)."""
        tracker0 = self._tracker
        if hi - lo <= 48 and isinstance(tracker0.gct._counts, array):
            # Scalar path for short segments (the common case: the
            # median committed segment is a few dozen requests, where
            # numpy dispatch overhead dominates). Counts are read and
            # bumped in order, which matches the vector path's
            # snapshot-then-bincount semantics because ``classify``
            # guarantees no group *crosses* T_G inside a committed
            # segment — a group is either saturated throughout or
            # stays strictly below T_G even after every increment.
            g_l = self._groups_l
            if g_l is None:
                g_l = self._groups_l = self._groups.tolist()
                self._occ_l = self._occ.tolist()
                self._rows_l = self._rows.tolist()
            occ_l = self._occ_l
            rows_l = self._rows_l
            ca = self._consumed_a
            counts_a = tracker0.gct._counts
            tg = tracker0.tg
            skip_s = set(skip) if skip else ()
            per_row = None
            n_sat = 0
            n_gct = 0
            for j in range(lo, hi):
                g = g_l[j]
                ca[g] = occ_l[j]
                if j in skip_s:
                    continue
                cval = counts_a[g]
                if cval >= tg:
                    row = rows_l[j]
                    if per_row is None:
                        per_row = {}
                    per_row[row] = per_row.get(row, 0) + 1
                    n_sat += 1
                else:
                    counts_a[g] = cval + 1
                    n_gct += 1
            self._done = hi
            if n_sat:
                rcc = tracker0.rcc
                data = rcc._data
                sets = rcc.sets
                for row, add in per_row.items():
                    entry = data[row % sets][row]
                    entry[0] += add
                    entry[1] = 0  # SRRIP promotion, as scalar hits do
                rcc.hits += n_sat
                tracker0.stats.rcc_hits += n_sat
            if n_gct:
                tracker0.stats.gct_only += n_gct
            return
        groups = self._groups
        seg_g = groups[lo:hi]
        self._consumed[seg_g] = self._occ[lo:hi]
        self._done = hi
        idx = None
        if skip:
            keep = np.ones(hi - lo, dtype=bool)
            keep[np.asarray(skip, dtype=np.int64) - lo] = False
            seg_g = seg_g[keep]
            idx = np.nonzero(keep)[0] + lo
        n = seg_g.size
        if not n:
            return
        tracker = self._tracker
        gview = tracker._gct_view()
        ana = self._ana
        if ana is not None and ana[0] == lo and ana[1] >= hi:
            sat = ana[2][: hi - lo]
            if idx is not None:
                sat = sat[keep]
        else:
            sat = gview[seg_g] >= tracker.tg
        n_sat = int(np.count_nonzero(sat))
        if n_sat:
            sat_pos = (
                idx[sat] if idx is not None else np.nonzero(sat)[0] + lo
            )
            per_row: dict = {}
            for row in self._rows[sat_pos].tolist():
                per_row[row] = per_row.get(row, 0) + 1
            rcc = tracker.rcc
            data = rcc._data
            sets = rcc.sets
            for row, add in per_row.items():
                entry = data[row % sets][row]
                entry[0] += add
                entry[1] = 0  # SRRIP promotion, as scalar hits do
            rcc.hits += n_sat
            tracker.stats.rcc_hits += n_sat
        if n_sat < n:
            gg = seg_g[~sat] if n_sat else seg_g
            gmin = int(gg.min())
            counts = np.bincount(gg - gmin)
            gview[gmin : gmin + counts.size] += counts
            tracker.stats.gct_only += n - n_sat


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------

_HYDRA_PARAMS = {
    "gct_entries": Param(
        int, help="full-scale GCT entries (default 32768 x structure scale)"
    ),
    "rcc_entries": Param(
        int, help="full-scale RCC entries (default 8192 x structure scale)"
    ),
    "rcc_kb": Param(
        int,
        help="full-scale RCC size in KB (3 B/entry, Table 4; alternative"
        " to rcc_entries)",
    ),
    "rcc_ways": Param(int, 16, "RCC associativity"),
    "tg_fraction": Param(float, 0.80, "T_G as a fraction of T_H"),
    "enable_gct": Param(bool, True, "disable for the Hydra-NoGCT ablation"),
    "enable_rcc": Param(bool, True, "disable for the Hydra-NoRCC ablation"),
    "randomize_mapping": Param(
        bool, False, "footnote-4 keyed row-address randomization"
    ),
}


def _hydra_from_context(
    ctx: TrackerContext,
    gct_entries: Optional[int] = None,
    rcc_entries: Optional[int] = None,
    rcc_kb: Optional[int] = None,
    rcc_ways: Optional[int] = None,
    tg_fraction: Optional[float] = None,
    enable_gct: bool = True,
    enable_rcc: bool = True,
    randomize_mapping: bool = False,
) -> HydraTracker:
    """Build a Hydra instance from context + full-scale overrides."""
    if rcc_kb is not None:
        if rcc_entries is not None:
            raise ValueError("give rcc_entries or rcc_kb, not both")
        ways = rcc_ways if rcc_ways is not None else ctx.rcc_ways
        entries = (rcc_kb * 1024 // RCC_ENTRY_BYTES) // ways * ways
        rcc_entries = max(ways, entries)
    overrides: Dict[str, object] = {}
    if gct_entries is not None:
        overrides["gct_entries_full"] = gct_entries
    if rcc_entries is not None:
        overrides["rcc_entries_full"] = rcc_entries
    if rcc_ways is not None:
        overrides["rcc_ways"] = rcc_ways
    if tg_fraction is not None:
        overrides["tg_fraction"] = tg_fraction
    if overrides:
        ctx = replace(ctx, **overrides)
    return HydraTracker(
        ctx.hydra_config(
            enable_gct=enable_gct,
            enable_rcc=enable_rcc,
            randomize_mapping=randomize_mapping,
        )
    )


register_tracker(
    "hydra",
    summary="hybrid GCT + RCC + RCT tracking (this paper)",
    params=_HYDRA_PARAMS,
)(_hydra_from_context)


@register_tracker(
    "hydra-nogct", summary="Figure-8 ablation: per-row tracking only"
)
def _hydra_nogct_from_context(ctx: TrackerContext) -> HydraTracker:
    return _hydra_from_context(ctx, enable_gct=False)


@register_tracker(
    "hydra-norcc", summary="Figure-8 ablation: no row-count cache"
)
def _hydra_norcc_from_context(ctx: TrackerContext) -> HydraTracker:
    return _hydra_from_context(ctx, enable_rcc=False)


@register_tracker(
    "hydra-randomized", summary="Hydra with footnote-4 randomized mapping"
)
def _hydra_randomized_from_context(ctx: TrackerContext) -> HydraTracker:
    tracker = _hydra_from_context(ctx, randomize_mapping=True)
    tracker.name = "hydra-randomized"
    return tracker
