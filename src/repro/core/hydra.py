"""The Hydra hybrid tracker (the paper's core contribution, §4).

Every activation takes one of three paths (Figure 4):

1. **GCT-only** (common case, ~90.7%): the row-group's counter is
   below T_G; increment it and stop. If this increment *reaches* T_G,
   all RCT entries of the group are initialized to T_G (two line reads
   plus two line writes of metadata traffic).
2. **RCC hit** (~9.0%): the group is saturated, and the row's private
   counter is cached on-chip; increment it locally. Reaching T_H
   issues a mitigation and resets the counter.
3. **RCT access** (~0.3%): as (2) but the counter must be fetched from
   DRAM and installed in the RCC, writing back a (dirty) victim.

The rows that store the RCT itself are guarded by a dedicated SRAM
counter array (RIT-ACT, §5.2.2) so an adversary cannot hammer the
counter rows unseen.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.core.config import HydraConfig
from repro.core.gct import GroupCountTable
from repro.core.randomize import FeistelPermutation
from repro.core.rcc import RowCountCache
from repro.core.rct import RowCountTable
from repro.trackers.base import ActivationTracker, MetaAccess, TrackerResponse
from repro.trackers.registry import (
    RCC_ENTRY_BYTES,
    Param,
    TrackerContext,
    register_tracker,
)


@dataclass
class HydraStats:
    """Per-run accounting (drives Figure 6 and the power analysis)."""

    gct_only: int = 0
    rcc_hits: int = 0
    rct_accesses: int = 0
    group_inits: int = 0
    mitigations: int = 0
    meta_read_lines: int = 0
    meta_write_lines: int = 0
    rit_act_activations: int = 0
    window_resets: int = 0

    @property
    def total_updates(self) -> int:
        return self.gct_only + self.rcc_hits + self.rct_accesses

    def distribution(self) -> Dict[str, float]:
        """Fraction of activation updates satisfied at each level."""
        total = self.total_updates
        if total == 0:
            return {"gct_only": 0.0, "rcc_hit": 0.0, "rct_access": 0.0}
        return {
            "gct_only": self.gct_only / total,
            "rcc_hit": self.rcc_hits / total,
            "rct_access": self.rct_accesses / total,
        }


class HydraTracker(ActivationTracker):
    """Hybrid GCT + RCC + RCT activation tracker."""

    name = "hydra"

    def __init__(self, config: Optional[HydraConfig] = None) -> None:
        # A dataclass default argument would be one instance shared by
        # every default-constructed tracker; build a fresh one instead.
        if config is None:
            config = HydraConfig()
        self.config = config
        self.th = config.th
        self.tg = config.tg
        self._group_size = config.group_size
        self._group_mask = ~(config.group_size - 1)
        self.gct: Optional[GroupCountTable] = (
            GroupCountTable(config.gct_entries, config.tg, config.group_size)
            if config.enable_gct
            else None
        )
        self.rcc: Optional[RowCountCache] = (
            RowCountCache(config.rcc_entries, config.rcc_ways)
            if config.enable_rcc
            else None
        )
        counter_bytes = max(1, (self.th.bit_length() + 7) // 8)
        self.rct = RowCountTable(config.geometry, counter_bytes=counter_bytes)
        self._permutation: Optional[FeistelPermutation] = (
            FeistelPermutation(config.geometry.total_rows, config.mapping_seed)
            if config.randomize_mapping
            else None
        )
        self._rit_act: Dict[int, int] = {}
        self.stats = HydraStats()
        # Scalar copies for the per-activation path: the meta-row guard
        # runs on every single activation, so it reads two ints off
        # ``self`` instead of calling into the RCT. Likewise the GCT's
        # counter array and shift are hoisted here so the ~90% common
        # case is a direct array probe; ``GroupCountTable.reset`` keeps
        # the backing array's identity, so the reference stays valid
        # across window resets.
        self._rows_per_bank = config.geometry.rows_per_bank
        self._meta_base_local = self.rct.meta_base_local
        self._gct_counts = self.gct._counts if self.gct is not None else None
        self._gct_shift = (
            self.gct._group_shift if self.gct is not None else 0
        )
        if not config.enable_gct:
            self.name = "hydra-nogct"
        elif not config.enable_rcc:
            self.name = "hydra-norcc"

    # ------------------------------------------------------------------
    # ActivationTracker interface
    # ------------------------------------------------------------------

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        # Inlined self.rct.is_meta_row(row_id) — this guard runs on
        # every activation.
        if row_id % self._rows_per_bank >= self._meta_base_local:
            return self._count_meta_row_activation(row_id)
        # Footnote 4: with randomized mapping, all internal indexing
        # (GCT entry, RCC tag, RCT slot) uses the permuted id, while
        # mitigations still name the physical row in hand.
        permutation = self._permutation
        key = permutation.permute(row_id) if permutation is not None else row_id
        gct = self.gct
        if gct is not None:
            # ``gct.update(key)`` inlined: the below-T_G increment is
            # the ~90% common case of the whole tracker, worth a direct
            # array probe instead of a method call.
            counts = self._gct_counts
            group = key >> self._gct_shift
            value = counts[group]
            tg = self.tg
            if value < tg:
                value += 1
                counts[group] = value
                if value < tg:
                    self.stats.gct_only += 1
                    return None
                # This update saturated the group: switch it to
                # per-row tracking by initializing its RCT entries.
                gct.saturated_groups += 1
                stats = self.stats
                stats.gct_only += 1
                stats.group_inits += 1
                first_row = key & self._group_mask
                meta = self.rct.init_group(first_row, self._group_size, tg)
                self._account_meta(meta)
                return TrackerResponse(meta_accesses=tuple(meta))
            # value >= T_G: group saturated on an earlier update.
        return self._per_row_update(key, row_id)

    def on_window_reset(self) -> None:
        """Reset SRAM structures every tracking window (§4.6)."""
        if self.gct is not None:
            self.gct.reset()
        else:
            # Without a GCT there is no lazy re-initialization path, so
            # the per-row state itself must be reset (models entry
            # versioning; costless in time, like the paper's design).
            self.rct.reset_all()
        if self.rcc is not None:
            self.rcc.reset()
        if self._permutation is not None:
            # Footnote 4: change the cipher key every window so group
            # membership cannot be learned across windows.
            self._permutation = self._permutation.rekeyed(
                self.config.mapping_seed + self.stats.window_resets + 1
            )
        self._rit_act.clear()
        self.stats.window_resets += 1

    def sram_bytes(self) -> int:
        total = 0
        if self.gct is not None:
            total += self.gct.sram_bytes()
        if self.rcc is not None:
            total += self.rcc.sram_bytes()
        total += self.rct.total_meta_rows  # 1-byte RIT-ACT counters
        return total

    def dram_reserved_bytes(self) -> int:
        return self.rct.dram_reserved_bytes()

    @property
    def mitigations(self) -> int:
        return self.stats.mitigations

    def extra_stats(self) -> Dict[str, object]:
        """Figure 6's distribution plus metadata-path counters."""
        return {
            "distribution": self.stats.distribution(),
            "group_inits": self.stats.group_inits,
            "rit_act_activations": self.stats.rit_act_activations,
        }

    def obs_snapshot(self) -> Dict[str, float]:
        """Cumulative counters for the per-window series recorder.

        ``HydraStats`` survives window resets (only the SRAM
        structures clear), so every field differences cleanly into
        per-window deltas: the three update levels reproduce Figure 6
        window by window, and ``rcc_hits`` vs ``rct_accesses`` gives
        the per-window RCC hit rate.
        """
        stats = self.stats
        return {
            "tracker_mitigations": float(stats.mitigations),
            "hydra_gct_only": float(stats.gct_only),
            "hydra_rcc_hits": float(stats.rcc_hits),
            "hydra_rct_accesses": float(stats.rct_accesses),
            "hydra_group_inits": float(stats.group_inits),
            "hydra_meta_read_lines": float(stats.meta_read_lines),
            "hydra_meta_write_lines": float(stats.meta_write_lines),
            "hydra_rit_act_activations": float(stats.rit_act_activations),
        }

    def publish_metrics(self, registry) -> None:
        """Publish tracker totals plus each structure's own metrics."""
        super().publish_metrics(registry)
        for name, value in self.obs_snapshot().items():
            if name == "tracker_mitigations":
                continue  # already published by the base class
            registry.counter(name, f"HydraStats.{name}").inc(int(value))
        if self.gct is not None:
            self.gct.publish_metrics(registry)
        if self.rcc is not None:
            self.rcc.publish_metrics(registry)
        self.rct.publish_metrics(registry)

    # ------------------------------------------------------------------
    # Internal paths
    # ------------------------------------------------------------------

    def _per_row_update(
        self, key: int, physical_row: int
    ) -> Optional[TrackerResponse]:
        """Per-row tracking: ``key`` indexes the structures,
        ``physical_row`` is what a mitigation must refresh around
        (they differ only under randomized mapping)."""
        rcc = self.rcc
        if rcc is None:
            return self._rct_read_modify_write(key, physical_row)
        # Fused lookup + increment: one dict probe on the ~9% hit path
        # (equivalent to lookup(); write(count + 1) — see RowCountCache).
        count = rcc.increment_if_present(key)
        if count is not None:
            self.stats.rcc_hits += 1
            if count >= self.th:
                rcc.write(key, 0)
                self.stats.mitigations += 1
                return TrackerResponse(mitigate_rows=(physical_row,))
            return None
        # RCC miss: fetch the counter line from the RCT in DRAM.
        self.stats.rct_accesses += 1
        value = self.rct.read(key)
        meta = [MetaAccess(self.rct.meta_row_of(key), 1, False)]
        victim = self.rcc.install(key, value)
        if victim is not None:
            victim_key, victim_count = victim
            self.rct.write(victim_key, victim_count)
            victim_meta_row = self.rct.meta_row_of(victim_key)
            meta.append(MetaAccess(victim_meta_row, 1, False))
            meta.append(MetaAccess(victim_meta_row, 1, True))
        self._account_meta(meta)
        count = value + 1
        if count >= self.th:
            self.rcc.write(key, 0)
            self.stats.mitigations += 1
            return TrackerResponse(
                mitigate_rows=(physical_row,), meta_accesses=tuple(meta)
            )
        self.rcc.write(key, count)
        return TrackerResponse(meta_accesses=tuple(meta))

    def _rct_read_modify_write(
        self, key: int, physical_row: int
    ) -> TrackerResponse:
        """Hydra-NoRCC: every per-row update is a DRAM RMW."""
        self.stats.rct_accesses += 1
        meta_row = self.rct.meta_row_of(key)
        meta = (
            MetaAccess(meta_row, 1, False),
            MetaAccess(meta_row, 1, True),
        )
        self._account_meta(meta)
        value = self.rct.read(key) + 1
        if value >= self.th:
            self.rct.write(key, 0)
            self.stats.mitigations += 1
            return TrackerResponse(
                mitigate_rows=(physical_row,), meta_accesses=meta
            )
        self.rct.write(key, value)
        return TrackerResponse(meta_accesses=meta)

    def _count_meta_row_activation(self, row_id: int) -> Optional[TrackerResponse]:
        """RIT-ACT: SRAM counters guarding the RCT's own DRAM rows."""
        self.stats.rit_act_activations += 1
        count = self._rit_act.get(row_id, 0) + 1
        if count >= self.th:
            self._rit_act[row_id] = 0
            self.stats.mitigations += 1
            return TrackerResponse(mitigate_rows=(row_id,))
        self._rit_act[row_id] = count
        return None

    def _account_meta(self, meta) -> None:
        for access in meta:
            if access.is_write:
                self.stats.meta_write_lines += access.n_lines
            else:
                self.stats.meta_read_lines += access.n_lines


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------

_HYDRA_PARAMS = {
    "gct_entries": Param(
        int, help="full-scale GCT entries (default 32768 x structure scale)"
    ),
    "rcc_entries": Param(
        int, help="full-scale RCC entries (default 8192 x structure scale)"
    ),
    "rcc_kb": Param(
        int,
        help="full-scale RCC size in KB (3 B/entry, Table 4; alternative"
        " to rcc_entries)",
    ),
    "rcc_ways": Param(int, 16, "RCC associativity"),
    "tg_fraction": Param(float, 0.80, "T_G as a fraction of T_H"),
    "enable_gct": Param(bool, True, "disable for the Hydra-NoGCT ablation"),
    "enable_rcc": Param(bool, True, "disable for the Hydra-NoRCC ablation"),
    "randomize_mapping": Param(
        bool, False, "footnote-4 keyed row-address randomization"
    ),
}


def _hydra_from_context(
    ctx: TrackerContext,
    gct_entries: Optional[int] = None,
    rcc_entries: Optional[int] = None,
    rcc_kb: Optional[int] = None,
    rcc_ways: Optional[int] = None,
    tg_fraction: Optional[float] = None,
    enable_gct: bool = True,
    enable_rcc: bool = True,
    randomize_mapping: bool = False,
) -> HydraTracker:
    """Build a Hydra instance from context + full-scale overrides."""
    if rcc_kb is not None:
        if rcc_entries is not None:
            raise ValueError("give rcc_entries or rcc_kb, not both")
        ways = rcc_ways if rcc_ways is not None else ctx.rcc_ways
        entries = (rcc_kb * 1024 // RCC_ENTRY_BYTES) // ways * ways
        rcc_entries = max(ways, entries)
    overrides: Dict[str, object] = {}
    if gct_entries is not None:
        overrides["gct_entries_full"] = gct_entries
    if rcc_entries is not None:
        overrides["rcc_entries_full"] = rcc_entries
    if rcc_ways is not None:
        overrides["rcc_ways"] = rcc_ways
    if tg_fraction is not None:
        overrides["tg_fraction"] = tg_fraction
    if overrides:
        ctx = replace(ctx, **overrides)
    return HydraTracker(
        ctx.hydra_config(
            enable_gct=enable_gct,
            enable_rcc=enable_rcc,
            randomize_mapping=randomize_mapping,
        )
    )


register_tracker(
    "hydra",
    summary="hybrid GCT + RCC + RCT tracking (this paper)",
    params=_HYDRA_PARAMS,
)(_hydra_from_context)


@register_tracker(
    "hydra-nogct", summary="Figure-8 ablation: per-row tracking only"
)
def _hydra_nogct_from_context(ctx: TrackerContext) -> HydraTracker:
    return _hydra_from_context(ctx, enable_gct=False)


@register_tracker(
    "hydra-norcc", summary="Figure-8 ablation: no row-count cache"
)
def _hydra_norcc_from_context(ctx: TrackerContext) -> HydraTracker:
    return _hydra_from_context(ctx, enable_rcc=False)


@register_tracker(
    "hydra-randomized", summary="Hydra with footnote-4 randomized mapping"
)
def _hydra_randomized_from_context(ctx: TrackerContext) -> HydraTracker:
    tracker = _hydra_from_context(ctx, randomize_mapping=True)
    tracker.name = "hydra-randomized"
    return tracker
