"""Hydra: the paper's hybrid SRAM/DRAM RowHammer tracker.

Public surface:

- :class:`HydraConfig` — design parameters (thresholds, table sizes).
- :class:`HydraTracker` — the tracker itself (GCT + RCC + RCT + RIT-ACT).
- :class:`GroupCountTable`, :class:`RowCountCache`,
  :class:`RowCountTable` — the individual structures, usable alone.
- :func:`hydra_storage` — Table-4 storage accounting.
"""

from repro.core.config import HydraConfig
from repro.core.gct import GroupCountTable
from repro.core.hydra import HydraStats, HydraTracker
from repro.core.rcc import RowCountCache
from repro.core.rct import RowCountTable
from repro.core.storage import HydraStorageReport, hydra_storage

__all__ = [
    "GroupCountTable",
    "HydraConfig",
    "HydraStats",
    "HydraStorageReport",
    "HydraTracker",
    "RowCountCache",
    "RowCountTable",
    "hydra_storage",
]
