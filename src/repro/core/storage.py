"""Hydra storage accounting (Table 4).

Computes the SRAM cost of a Hydra configuration at *full* scale, plus
the reserved-DRAM footprint, reproducing the paper's 56.5 KB total for
the 32 GB baseline system: 32 KB GCT + 24 KB RCC + 0.5 KB RIT-ACT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import HydraConfig


@dataclass(frozen=True)
class HydraStorageReport:
    """SRAM breakdown of one Hydra design point, in bytes."""

    gct_bytes: int
    rcc_bytes: int
    rit_act_bytes: int
    dram_reserved_bytes: int

    @property
    def sram_total_bytes(self) -> int:
        return self.gct_bytes + self.rcc_bytes + self.rit_act_bytes

    @property
    def sram_total_kib(self) -> float:
        return self.sram_total_bytes / 1024.0

    def rows(self) -> Dict[str, str]:
        """Table-4-shaped rows for the benchmark harness."""
        return {
            "GCT": f"{self.gct_bytes / 1024:.1f} KB",
            "RCC": f"{self.rcc_bytes / 1024:.1f} KB",
            "RIT-ACT": f"{self.rit_act_bytes / 1024:.1f} KB",
            "Total": f"{self.sram_total_kib:.1f} KB",
        }


def hydra_storage(config: Optional[HydraConfig] = None) -> HydraStorageReport:
    """Storage of a Hydra instance, following Table 4's arithmetic.

    - GCT: one counter per entry, sized to hold T_G (1 byte at the
      default T_G = 200).
    - RCC: 24 bits per entry — valid + tag (13 bits after
      set-associative index truncation) + 2-bit SRRIP + 8-bit counter.
    - RIT-ACT: one 1-byte counter per DRAM row that stores the RCT.
    """
    if config is None:
        config = HydraConfig()
    gct_entry_bytes = max(1, (config.tg.bit_length() + 7) // 8)
    gct_bytes = config.gct_entries * gct_entry_bytes if config.enable_gct else 0
    rcc_bytes = config.rcc_entries * 3 if config.enable_rcc else 0

    geometry = config.geometry
    counter_bytes = max(1, (config.th.bit_length() + 7) // 8)
    counters_per_row = geometry.row_size_bytes // counter_bytes
    meta_rows_per_bank = -(-geometry.rows_per_bank // counters_per_row)
    total_meta_rows = meta_rows_per_bank * geometry.total_banks
    return HydraStorageReport(
        gct_bytes=gct_bytes,
        rcc_bytes=rcc_bytes,
        rit_act_bytes=total_meta_rows,
        dram_reserved_bytes=total_meta_rows * geometry.row_size_bytes,
    )
