"""Row-Count Table (RCT): per-row counters stored in the DRAM array.

The RCT holds one small counter per DRAM row, in a reserved region of
the addressable space (4 MB for the paper's 32 GB system — under
0.02% of capacity). This model keeps the counters for a bank's rows in
reserved rows *of that same bank* (16 meta-rows at the top of each
bank at full scale), so a row-group's 128 one-byte counters occupy two
adjacent 64 B lines of a single meta-row — which is what makes the
paper's group initialization cost exactly two line reads plus two line
writes.

The class also answers "which DRAM row stores row X's counter?" so the
memory controller can time metadata traffic, and "is row Y a metadata
row?" so the tracker can guard the RCT's own rows with the dedicated
RIT-ACT counters (§5.2.2).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.dram.timing import DramGeometry
from repro.interfaces import MetaAccess


class RowCountTable:
    """DRAM-resident table of per-row activation counters."""

    def __init__(self, geometry: DramGeometry, counter_bytes: int = 1) -> None:
        if counter_bytes <= 0:
            raise ValueError("counter_bytes must be positive")
        self._geometry = geometry
        self.counter_bytes = counter_bytes
        self._rows_per_bank = geometry.rows_per_bank
        self._counters_per_meta_row = geometry.row_size_bytes // counter_bytes
        if self._counters_per_meta_row == 0:
            raise ValueError("counter does not fit in a row")
        self.meta_rows_per_bank = -(-self._rows_per_bank // self._counters_per_meta_row)
        self._meta_base_local = self._rows_per_bank - self.meta_rows_per_bank
        if self._meta_base_local <= 0:
            raise ValueError("geometry too small to host the RCT")
        self._line_size = geometry.line_size_bytes
        self._counts: List[int] = [0] * geometry.total_rows

    @property
    def geometry(self) -> DramGeometry:
        return self._geometry

    @property
    def meta_base_local(self) -> int:
        """First in-bank row index of the metadata reservation."""
        return self._meta_base_local

    @property
    def total_meta_rows(self) -> int:
        return self.meta_rows_per_bank * self._geometry.total_banks

    def dram_reserved_bytes(self) -> int:
        """Reserved DRAM capacity (whole meta rows)."""
        return (
            self.total_meta_rows * self._geometry.row_size_bytes
        )

    def is_meta_row(self, row_id: int) -> bool:
        """True if ``row_id`` is one of the rows storing the RCT."""
        return row_id % self._rows_per_bank >= self._meta_base_local

    def meta_row_of(self, row_id: int) -> int:
        """Global id of the DRAM row holding ``row_id``'s counter."""
        bank_base = row_id - row_id % self._rows_per_bank
        local = row_id % self._rows_per_bank
        return bank_base + self._meta_base_local + local // self._counters_per_meta_row

    def read(self, row_id: int) -> int:
        return self._counts[row_id]

    def write(self, row_id: int, value: int) -> None:
        if value < 0:
            raise ValueError("counter value must be non-negative")
        self._counts[row_id] = value

    def init_group(self, first_row: int, group_size: int, value: int) -> List[MetaAccess]:
        """Set a whole row-group's counters to ``value`` (GCT overflow).

        Returns the metadata traffic this costs: n line reads plus n
        line writes on the group's meta row (n = 2 for the default
        128-row groups with 1-byte counters).
        """
        if first_row % group_size:
            raise ValueError("first_row must be group aligned")
        self._counts[first_row : first_row + group_size] = [value] * group_size
        n_lines = -(-group_size * self.counter_bytes // self._line_size)
        meta_row = self.meta_row_of(first_row)
        return [
            MetaAccess(row_id=meta_row, n_lines=n_lines, is_write=False),
            MetaAccess(row_id=meta_row, n_lines=n_lines, is_write=True),
        ]

    def reset_all(self) -> None:
        """Zero every counter, in place.

        Plain Hydra never needs this (stale counts are overwritten by
        group initialization, §4.6); the Hydra-NoGCT ablation uses it
        at window boundaries, standing in for entry versioning. The
        zero-fill reuses the existing list (slice assignment) instead
        of rebinding a fresh allocation, so references hoisted by hot
        loops survive a reset.
        """
        self._counts[:] = [0] * len(self._counts)

    def count_frequencies(self) -> Dict[int, int]:
        """How many rows currently hold each counter value.

        One pass over the table (end-of-run observability, never the
        hot path). The overwhelming majority of rows sit at zero —
        only saturated groups ever get per-row values — so the result
        is a small dict even for millions of rows.
        """
        return dict(Counter(self._counts))

    def publish_metrics(self, registry, prefix: str = "hydra_rct") -> None:
        """End-of-run table state for the observability registry.

        Publishes a Figure-6-style histogram of the per-row counter
        values left in the table (power-of-two buckets, sized so the
        run's largest count lands in a real bucket).
        """
        frequencies = self.count_frequencies()
        max_count = max(frequencies)
        bounds: List[float] = [0.0]
        edge = 1
        while edge < max_count:
            bounds.append(float(edge))
            edge *= 2
        bounds.append(float(max(edge, 1)))
        histogram = registry.histogram(
            f"{prefix}_row_counts",
            bounds=bounds,
            help_text="per-row RCT counter values at end of run"
            " (current window; Fig-6-style count distribution)",
        )
        for value, rows in sorted(frequencies.items()):
            histogram.observe_count(float(value), rows)
        registry.gauge(
            f"{prefix}_meta_rows", "DRAM rows reserved for the RCT"
        ).set(float(self.total_meta_rows))
        registry.gauge(
            f"{prefix}_nonzero_rows", "rows with a live per-row count"
        ).set(float(sum(n for v, n in frequencies.items() if v > 0)))
