"""Configuration for the Hydra hybrid tracker.

Defaults reproduce the paper's baseline design point (§4.3, §6):
T_RH = 500, so the Hydra tracking threshold T_H = 250, GCT threshold
T_G = 200 (80% of T_H), a 32K-entry GCT and an 8K-entry RCC for the
32 GB two-channel system — i.e. 128 rows per row-group.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dram.timing import PAPER_GEOMETRY, DramGeometry


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class HydraConfig:
    """Design parameters of one Hydra instance.

    ``enable_gct`` / ``enable_rcc`` exist for the Figure-8 ablations
    (Hydra-NoGCT, Hydra-NoRCC).
    """

    geometry: DramGeometry = PAPER_GEOMETRY
    #: RowHammer threshold the design must defend (T_RH).
    trh: int = 500
    #: Entries in the Group-Count Table.
    gct_entries: int = 32768
    #: Entries in the Row-Count Cache.
    rcc_entries: int = 8192
    #: RCC associativity.
    rcc_ways: int = 16
    #: T_G as a fraction of T_H (paper default 80%).
    tg_fraction: float = 0.80
    #: Victim-refresh blast radius (rows refreshed on each side).
    blast_radius: int = 2
    enable_gct: bool = True
    enable_rcc: bool = True
    #: Footnote 4: pass row addresses through a keyed block cipher
    #: before indexing the GCT/RCT, re-keyed every window, hiding
    #: group membership from adversaries. Performance is within ~0.1%
    #: of the static mapping (paper's finding, reproduced in tests).
    randomize_mapping: bool = False
    #: Base key for the randomized mapping (re-keyed per window).
    mapping_seed: int = 0x48594452  # "HYDR"

    def __post_init__(self) -> None:
        if self.trh < 4:
            raise ValueError("T_RH must be at least 4")
        if not _is_power_of_two(self.gct_entries):
            raise ValueError("gct_entries must be a power of two")
        if self.rcc_entries <= 0 or self.rcc_ways <= 0:
            raise ValueError("RCC sizing must be positive")
        if self.rcc_entries % self.rcc_ways:
            raise ValueError("rcc_entries must be divisible by rcc_ways")
        if not 0.0 < self.tg_fraction < 1.0:
            raise ValueError("tg_fraction must be in (0, 1)")
        if self.geometry.total_rows % self.gct_entries:
            raise ValueError("gct_entries must divide total rows")
        if self.blast_radius < 0:
            raise ValueError("blast_radius must be non-negative")
        if self.tg < 1:
            raise ValueError("T_G computes to < 1; raise tg_fraction or trh")

    @property
    def th(self) -> int:
        """Hydra tracking threshold T_H = T_RH / 2 (§4.6)."""
        return self.trh // 2

    @property
    def tg(self) -> int:
        """GCT saturation threshold T_G."""
        return int(round(self.th * self.tg_fraction))

    @property
    def group_size(self) -> int:
        """Rows per row-group (rows sharing one GCT entry)."""
        return self.geometry.total_rows // self.gct_entries

    @property
    def rcc_sets(self) -> int:
        return self.rcc_entries // self.rcc_ways

    def scaled(self, scale: float) -> "HydraConfig":
        """Shrink structures with the memory (DESIGN.md §3).

        Thresholds and the group size are invariant; GCT/RCC entry
        counts shrink with the row count so every rows-to-entries
        ratio is preserved.
        """
        if scale <= 0 or scale > 1:
            raise ValueError("scale must be in (0, 1]")
        geometry = self.geometry.scaled(scale)
        ratio = geometry.total_rows / self.geometry.total_rows
        gct = max(1, int(self.gct_entries * ratio))
        gct = 1 << (gct.bit_length() - 1)  # floor to a power of two
        rcc = max(self.rcc_ways, int(self.rcc_entries * ratio))
        rcc -= rcc % self.rcc_ways
        return replace(
            self,
            geometry=geometry,
            gct_entries=gct,
            rcc_entries=max(self.rcc_ways, rcc),
        )

    def with_threshold(self, trh: int, structure_scale: int = 1) -> "HydraConfig":
        """Retarget T_RH, optionally scaling structures (Figure 7).

        The paper scales GCT/RCC proportionally (2x at T_RH=250,
        4x at T_RH=125).
        """
        if structure_scale < 1:
            raise ValueError("structure_scale must be >= 1")
        gct = self.gct_entries * structure_scale
        if self.geometry.total_rows % gct:
            # GCT cannot have more entries than rows.
            gct = self.geometry.total_rows
        return replace(
            self,
            trh=trh,
            gct_entries=gct,
            rcc_entries=self.rcc_entries * structure_scale,
        )
