"""Row-Count Cache (RCC): on-chip cache of individual RCT entries.

Unlike a conventional metadata cache (64 B lines tagged by memory
address, as CRA uses), the RCC caches *single counters* tagged by row
address (§4.4): row-to-row metadata accesses have poor spatial
locality, so line-granularity caching wastes capacity. The RCC is
set-associative with SRRIP replacement (Table 4 lists the 2-bit SRRIP
state in the entry). Every valid entry is dirty by construction — a
counter is only brought in to be incremented.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: SRRIP re-reference interval values (2 bits).
_RRPV_MAX = 3
_RRPV_INSERT = 2
_RRPV_HIT = 0


class RowCountCache:
    """Set-associative, row-tagged cache of (row -> count) entries."""

    __slots__ = ("sets", "ways", "_data", "hits", "misses", "evictions")

    def __init__(self, entries: int, ways: int) -> None:
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ValueError("entries must be a positive multiple of ways")
        self.sets = entries // ways
        self.ways = ways
        # One dict per set: row_id -> [count, rrpv].
        self._data: List[Dict[int, List[int]]] = [
            {} for _ in range(self.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def entries(self) -> int:
        return self.sets * self.ways

    def _set_of(self, row_id: int) -> Dict[int, List[int]]:
        return self._data[row_id % self.sets]

    def lookup(self, row_id: int) -> Optional[int]:
        """Return the cached count for a row, or None on miss.

        A hit promotes the entry (SRRIP near-immediate re-reference).
        """
        entry = self._set_of(row_id).get(row_id)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        entry[1] = _RRPV_HIT
        return entry[0]

    def write(self, row_id: int, count: int) -> None:
        """Update the count of a row that must already be resident."""
        entry = self._set_of(row_id).get(row_id)
        if entry is None:
            raise KeyError(f"row {row_id} not resident in RCC")
        entry[0] = count

    def increment_if_present(self, row_id: int) -> Optional[int]:
        """Fused ``lookup`` + ``write(count + 1)``: one dict probe.

        The ~9% RCC-hit path of Hydra increments a resident counter;
        doing it through ``lookup`` then ``write`` probes the set dict
        twice. This entry point probes once and is otherwise equivalent
        (hit/miss accounting and SRRIP promotion included). Returns the
        incremented count, or ``None`` on a miss — in which case
        nothing was modified except the miss counter, exactly like
        ``lookup``.
        """
        entry = self._data[row_id % self.sets].get(row_id)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        entry[1] = _RRPV_HIT
        count = entry[0] + 1
        entry[0] = count
        return count

    def install(self, row_id: int, count: int) -> Optional[Tuple[int, int]]:
        """Insert a row's counter, possibly evicting a victim.

        Returns ``(victim_row, victim_count)`` when a valid (hence
        dirty) entry was displaced and must be written back to the RCT,
        or ``None`` when a free way was available.
        """
        cache_set = self._set_of(row_id)
        if row_id in cache_set:
            # Re-install of a resident row just refreshes its state.
            cache_set[row_id] = [count, _RRPV_INSERT]
            return None
        victim: Optional[Tuple[int, int]] = None
        if len(cache_set) >= self.ways:
            victim_row = self._select_victim(cache_set)
            victim = (victim_row, cache_set.pop(victim_row)[0])
            self.evictions += 1
        cache_set[row_id] = [count, _RRPV_INSERT]
        return victim

    @staticmethod
    def _select_victim(cache_set: Dict[int, List[int]]) -> int:
        """SRRIP: evict an RRPV-max entry, aging the set as needed."""
        while True:
            for row, entry in cache_set.items():
                if entry[1] >= _RRPV_MAX:
                    return row
            for entry in cache_set.values():
                entry[1] += 1

    def contains(self, row_id: int) -> bool:
        return row_id in self._set_of(row_id)

    def occupancy(self) -> int:
        return sum(len(s) for s in self._data)

    def reset(self) -> None:
        """Window reset: drop all entries without writeback.

        Safe because RCT contents are only consumed after a group is
        re-initialized in the new window (§4.6).
        """
        self._data = [{} for _ in range(self.sets)]

    def sram_bytes(self) -> int:
        """Three bytes per entry: valid + 13-bit tag + SRRIP + counter.

        Matches Table 4: an 8K-entry RCC costs 24 KB.
        """
        return self.entries * 3

    def publish_metrics(self, registry, prefix: str = "hydra_rcc") -> None:
        """End-of-run cache behaviour for the observability registry.

        Hit/miss/eviction counters are cumulative across window resets
        (``reset`` drops entries, not accounting), so these are true
        whole-run totals; occupancy is the final window's.
        """
        registry.counter(f"{prefix}_hits", "RCC lookup hits").inc(self.hits)
        registry.counter(f"{prefix}_misses", "RCC lookup misses").inc(
            self.misses
        )
        registry.counter(
            f"{prefix}_evictions", "dirty RCC entries written back"
        ).inc(self.evictions)
        registry.gauge(f"{prefix}_entries", "RCC capacity in entries").set(
            float(self.entries)
        )
        registry.gauge(
            f"{prefix}_occupancy", "entries resident when the run ended"
        ).set(float(self.occupancy()))
        registry.gauge(
            f"{prefix}_hit_rate", "whole-run hits / (hits + misses)"
        ).set(
            self.hits / (self.hits + self.misses)
            if self.hits + self.misses
            else 0.0
        )
