"""Group-Count Table (GCT): Hydra's first line of defense.

An untagged table of saturating counters, one per *row-group* of
consecutive rows (128 rows by default — the rows sharing their MSBs).
Each counter tracks the aggregate activation count of its whole group
and saturates at T_G. While a group's counter is below T_G the GCT
alone services the activation; once it reaches T_G the group is
promoted to per-row tracking (RCT/RCC) for the rest of the window.

Because the counter is incremented by *every* row in the group, it is
always >= the true count of any single row in the group (Lemma-1),
which is what makes the filtering safe.
"""

from __future__ import annotations

from array import array

#: Largest counter value a compact array slot can hold ('Q' = uint64).
_ARRAY_MAX = 2**64 - 1


class GroupCountTable:
    """Array of per-group saturating counters.

    The counters live in a compact :mod:`array` of machine integers (8
    bytes per entry instead of a CPython pointer + boxed int), with a
    pre-built zero image so a window reset is a single buffer copy
    rather than a fresh allocation. Update semantics are identical to
    the reference list implementation (see ``tests/core/test_gct.py``).
    """

    __slots__ = (
        "entries",
        "threshold",
        "_group_shift",
        "_counts",
        "_zeros",
        "saturated_groups",
    )

    def __init__(self, entries: int, threshold: int, group_size: int) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if group_size <= 0 or group_size & (group_size - 1):
            raise ValueError("group_size must be a positive power of two")
        self.entries = entries
        self.threshold = threshold
        self._group_shift = group_size.bit_length() - 1
        if threshold <= _ARRAY_MAX:
            self._counts = array("Q", bytes(8 * entries))
            self._zeros = array("Q", bytes(8 * entries))
        else:
            # Counters beyond 64 bits (never a real hardware point, but
            # the class stays general): plain Python ints.
            self._counts = [0] * entries
            self._zeros = [0] * entries
        #: Number of groups currently saturated at T_G (diagnostics).
        self.saturated_groups = 0

    def group_of(self, row_id: int) -> int:
        """GCT index of a row (rows with identical MSBs share a group)."""
        return row_id >> self._group_shift

    def update(self, row_id: int) -> int:
        """Count one activation; return the group's new state.

        Returns the counter value after the update. A return equal to
        ``threshold`` means the group just saturated on *this* update
        (the caller must initialize the group's RCT entries); a return
        of ``threshold + 1`` is the sentinel for "already saturated —
        use per-row tracking".
        """
        group = row_id >> self._group_shift
        value = self._counts[group]
        if value >= self.threshold:
            return self.threshold + 1
        value += 1
        self._counts[group] = value
        if value == self.threshold:
            self.saturated_groups += 1
        return value

    def value(self, row_id: int) -> int:
        """Current counter value of the row's group (inspection)."""
        return self._counts[row_id >> self._group_shift]

    def is_saturated(self, row_id: int) -> bool:
        return self._counts[row_id >> self._group_shift] >= self.threshold

    def reset(self) -> None:
        """Window reset: zero-fill every counter in place.

        Slice-assigning the pre-built zero image is one memcpy; it also
        preserves the backing object's identity, so hot loops that
        hoisted a reference stay valid across resets.
        """
        self._counts[:] = self._zeros
        self.saturated_groups = 0

    def sram_bytes(self) -> int:
        """One byte per entry (counters sized to count to T_G <= 255).

        Matches Table 4: a 32K-entry GCT costs 32 KB. For thresholds
        above 255 the entry widens to the minimum whole number of
        bytes.
        """
        entry_bytes = max(1, (self.threshold.bit_length() + 7) // 8)
        return self.entries * entry_bytes

    def publish_metrics(self, registry, prefix: str = "hydra_gct") -> None:
        """End-of-run state for the observability registry.

        ``saturated_groups`` is the *final window's* value (the table
        resets every window); the per-window view comes from the
        tracker's ``hydra_group_inits`` series counter instead.
        """
        registry.gauge(f"{prefix}_entries", "GCT table entries").set(
            float(self.entries)
        )
        registry.gauge(
            f"{prefix}_saturated_groups",
            "groups at T_G when the run ended (current window)",
        ).set(float(self.saturated_groups))
        registry.gauge(f"{prefix}_sram_bytes", "GCT SRAM footprint").set(
            float(self.sram_bytes())
        )
