"""Randomized row-to-group mapping (paper §4.4, footnote 4).

The default Hydra maps 128 *consecutive* rows to one GCT entry. The
paper also evaluates a randomized variant: the row address is passed
through a keyed b-bit block cipher before indexing the GCT and RCT,
and the key changes every tracking window, so an adversary cannot
learn which rows share a group (and thus cannot deliberately gang up
on one GCT entry across windows). The paper reports the randomized
design performs within 0.1% of the static one.

This module provides the cipher: a 4-round Feistel network over the
row-id domain, made format-preserving for non-power-of-two or
odd-bit-width domains by cycle-walking. Feistel networks are
bijective by construction, so the mapping remains a permutation —
every row keeps a unique counter slot in the RCT.
"""

from __future__ import annotations

#: splitmix64-style mixing constants for the round function.
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    """Cheap 64-bit integer hash (splitmix64 finalizer)."""
    value &= _MASK64
    value ^= value >> 30
    value = (value * _MIX_1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX_2) & _MASK64
    value ^= value >> 31
    return value


class FeistelPermutation:
    """Keyed bijection over ``[0, n_values)``.

    A balanced Feistel network over the smallest even bit-width
    covering the domain, with cycle-walking to stay inside it. Four
    rounds suffice for a pseudorandom permutation against the
    adversary model here (group-membership hiding, not cryptographic
    secrecy of data).
    """

    ROUNDS = 4

    def __init__(self, n_values: int, key: int) -> None:
        if n_values <= 0:
            raise ValueError("n_values must be positive")
        self.n_values = n_values
        self.key = key
        bits = max(2, (n_values - 1).bit_length())
        if bits % 2:
            bits += 1
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._domain = 1 << bits

    def _round_value(self, round_index: int, value: int) -> int:
        return _mix(
            (self.key << 8) ^ (round_index << 56) ^ value
        ) & self._half_mask

    def _encrypt_once(self, value: int) -> int:
        left = value >> self._half_bits
        right = value & self._half_mask
        for round_index in range(self.ROUNDS):
            left, right = right, left ^ self._round_value(round_index, right)
        return (left << self._half_bits) | right

    def permute(self, value: int) -> int:
        """Map a row id to its randomized id (cycle-walking)."""
        if not 0 <= value < self.n_values:
            raise ValueError(f"value {value} outside [0, {self.n_values})")
        result = self._encrypt_once(value)
        while result >= self.n_values:
            result = self._encrypt_once(result)
        return result

    def rekeyed(self, key: int) -> "FeistelPermutation":
        """A fresh permutation over the same domain (window rekey)."""
        return FeistelPermutation(self.n_values, key)
