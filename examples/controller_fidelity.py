#!/usr/bin/env python3
"""Engine-fidelity report: fast vs queued over the figure sweeps.

The simulator has one selectable memory-controller engine axis:
``engine=fast`` resolves requests in order (the approximation the big
sweeps use) while ``engine=queued`` models the FR-FCFS read queues and
watermark-drained write queue of a USIMM-class scheduler (Table 2).
Both run through the same ``simulate()``/``ExperimentRunner`` path and
produce the same ``RunResult`` schema, so comparing them is just two
sweeps differing in ``SystemConfig.engine``.

This report runs the Figure-5 comparison (tracker vs no-tracking
baseline, per workload) on both engines and prints the slowdown each
engine attributes to the tracker plus their disagreement — the
fidelity gap. The *relative* Hydra-vs-baseline result, the quantity
every figure reports, is stable across engines, which is what
justifies using the fast engine for the large sweeps.

Run:  python examples/controller_fidelity.py [tracker] [workload ...]
      (default: hydra over all 36 workloads, scale 1/64; results are
      disk-cached, so re-runs and other engine-aware sweeps are free)
"""

import sys

from repro.sim import ExperimentRunner, SystemConfig
from repro.workloads import all_names


def fidelity_report(tracker="hydra", workloads=None, scale=1 / 64):
    config = SystemConfig(scale=scale, n_windows=1)
    workloads = list(workloads) if workloads else all_names()

    slowdowns = {}
    suites = {}
    for engine in ("fast", "queued"):
        runner = ExperimentRunner(config.with_engine(engine))
        comparisons = runner.compare(tracker, workloads)
        slowdowns[engine] = {
            c.workload: c.slowdown_percent for c in comparisons
        }
        suites[engine] = comparisons.slowdowns()
    return slowdowns, suites


def main() -> None:
    tracker = sys.argv[1] if len(sys.argv) > 1 else "hydra"
    workloads = sys.argv[2:] or None
    names = list(workloads) if workloads else all_names()
    print(
        f"tracker {tracker!r}: slowdown vs baseline on both engines, "
        f"{len(names)} workloads, scale 1/64\n"
    )
    slowdowns, suites = fidelity_report(tracker, workloads)

    header = f"{'workload':<12} {'fast %':>8} {'queued %':>9} {'delta':>7}"
    print(header)
    deltas = []
    for name in names:
        fast = slowdowns["fast"][name]
        queued = slowdowns["queued"][name]
        deltas.append(abs(fast - queued))
        print(f"{name:<12} {fast:>8.2f} {queued:>9.2f} {queued - fast:>+7.2f}")

    print("-" * len(header))
    for suite in suites["fast"]:
        fast = suites["fast"][suite]
        queued = suites["queued"].get(suite, float("nan"))
        print(f"{suite:<12} {fast:>8.2f} {queued:>9.2f} {queued - fast:>+7.2f}")

    worst = max(deltas) if deltas else 0.0
    mean = sum(deltas) / len(deltas) if deltas else 0.0
    print(
        f"\nfidelity gap (|queued - fast| slowdown): "
        f"mean {mean:.2f} pp, worst {worst:.2f} pp"
    )
    print(
        "Both engines attribute the same few-percent overhead to the "
        "tracker; the queued engine adds scheduling detail (read "
        "reordering, write drains) without changing the paper's "
        "relative results — which is what justifies running the large "
        "sweeps on engine=fast."
    )


if __name__ == "__main__":
    main()
