#!/usr/bin/env python3
"""Model-fidelity study: fast vs queued controller, MLP vs OoO core.

The repository ships two memory controllers (in-order resolution vs
FR-FCFS queues with a write queue) and two core front-ends (fixed-MLP
vs ROB-derived MLP). This example runs the same workload through all
combinations and shows that the *relative* Hydra-vs-baseline result —
the quantity every figure reports — is stable across model fidelity,
which is what justifies using the fast models for the big sweeps.

Run:  python examples/controller_fidelity.py
"""

from repro.core import HydraTracker
from repro.cpu import LimitedMlpCore, OooCore
from repro.memctrl import MemoryController, QueuedMemoryController
from repro.sim import SystemConfig
from repro.workloads import SyntheticWorkloadGenerator, workload


def main() -> None:
    config = SystemConfig(scale=1 / 64, n_windows=1)
    generator = SyntheticWorkloadGenerator(config.generator_config())
    trace = generator.generate(workload("xz"))
    print(f"workload: xz ({len(trace)} requests, scaled 1/64)\n")

    def tracked(tracker_name):
        if tracker_name == "baseline":
            return None
        return HydraTracker(config.hydra_config())

    rows = []
    for core_name, core in (
        ("fixed-MLP", LimitedMlpCore(mlp=config.mlp)),
        ("OoO (ROB)", OooCore()),
    ):
        for tracker_name in ("baseline", "hydra"):
            mc = MemoryController(
                config.geometry, config.timing, tracked(tracker_name)
            )
            result = core.run(trace, mc)
            rows.append(("fast", core_name, tracker_name, result.end_time_ns))
    for tracker_name in ("baseline", "hydra"):
        qmc = QueuedMemoryController(
            config.geometry, config.timing, tracked(tracker_name)
        )
        result = qmc.run_trace(trace, mlp=config.mlp)
        rows.append(("queued", "fixed-MLP", tracker_name, result.end_time_ns))

    print(f"{'controller':<10} {'core':<10} {'tracker':<9} {'time (ms)':>10}")
    for controller, core_name, tracker_name, end in rows:
        print(
            f"{controller:<10} {core_name:<10} {tracker_name:<9} "
            f"{end / 1e6:>10.3f}"
        )

    print("\nHydra slowdown by model:")
    by_key = {(c, k, t): end for c, k, t, end in rows}
    for controller, core_name in (
        ("fast", "fixed-MLP"),
        ("fast", "OoO (ROB)"),
        ("queued", "fixed-MLP"),
    ):
        base = by_key[(controller, core_name, "baseline")]
        hydra = by_key[(controller, core_name, "hydra")]
        print(
            f"  {controller:<7} + {core_name:<10}: "
            f"{100 * (hydra / base - 1):+.2f}%"
        )
    print(
        "\nAll three fidelity levels agree that Hydra's overhead on xz "
        "is a few percent — the paper's worst-case workload, reproduced "
        "robustly across modelling choices."
    )


if __name__ == "__main__":
    main()
