#!/usr/bin/env python3
"""Performance study: a miniature Figure 5 + Figure 6.

Simulates a representative slice of the paper's workloads (one from
each regime: streaming, hot-row-heavy, huge-footprint, random-access)
under Graphene, CRA, and Hydra, reporting normalized performance and
Hydra's update distribution.

Run:  python examples/performance_study.py           (about a minute)
      REPRO_SCALE=64 python examples/performance_study.py   (faster)
"""

from repro.sim import ExperimentRunner, SystemConfig, default_scale

WORKLOADS = ["bwaves", "xz", "parest", "deepsjeng", "GUPS"]
TRACKERS = ["graphene", "cra", "hydra"]


def main() -> None:
    config = SystemConfig(scale=default_scale())
    runner = ExperimentRunner(config)
    print(
        f"System: 1/{round(1 / config.scale)} of the paper's 32 GB DDR4 "
        f"machine, T_RH={config.trh}\n"
    )

    print("=== Normalized performance (baseline = 1.0) ===")
    header = f"{'workload':<12}" + "".join(f"{t:>10}" for t in TRACKERS)
    print(header)
    for workload in WORKLOADS:
        cells = ""
        for tracker in TRACKERS:
            comp = runner.compare(tracker, [workload])[0]
            cells += f"{comp.normalized_performance:>10.4f}"
        print(f"{workload:<12}{cells}")

    print("\n=== Hydra: where updates were satisfied (Figure 6) ===")
    print(f"{'workload':<12} {'GCT-only':>9} {'RCC-hit':>9} {'RCT(DRAM)':>10}")
    for workload in WORKLOADS:
        result = runner.run("hydra", workload)
        dist = result.hydra_distribution
        print(
            f"{workload:<12} {100 * dist['gct_only']:>8.1f}% "
            f"{100 * dist['rcc_hit']:>8.1f}% "
            f"{100 * dist['rct_access']:>9.2f}%"
        )

    print("\n=== Cost summary ===")
    for tracker in TRACKERS:
        result = runner.run(tracker, "xz")
        print(
            f"{tracker:<10} meta-accesses={result.meta_accesses:>8} "
            f"mitigations={result.mitigations:>6} "
            f"victim-refreshes={result.victim_refreshes:>6} "
            f"DRAM power={result.dram_power_w:.2f} W"
        )
    print(
        "\nThe paper's conclusion, reproduced: Graphene is fast but needs "
        "680 KB of CAM; CRA is cheap but slow; Hydra gets both right "
        "(56.5 KB, <1% average slowdown)."
    )


if __name__ == "__main__":
    main()
