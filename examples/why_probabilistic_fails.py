#!/usr/bin/env python3
"""Why probabilistic RowHammer defenses fail at ultra-low thresholds.

Reproduces §7.3's two observations side by side:

1. PARA's per-activation refresh probability must grow inversely with
   T_RH, so its refresh traffic explodes exactly where the problem is
   hardest.
2. MRLOC and ProHIT make probabilistic *tracking* decisions and can be
   defeated outright — the Theorem-1 oracle finds real activation
   sequences that cross the threshold unmitigated, something that
   cannot happen to Hydra.

Run:  python examples/why_probabilistic_fails.py
"""

from repro.analysis.security import verify_tracker
from repro.core import HydraConfig, HydraTracker
from repro.trackers.insecure import MrlocTracker, ProhitTracker
from repro.trackers.para import para_probability
from repro.workloads import attacks


def para_scaling() -> None:
    print("=== PARA: mitigation probability vs threshold ===")
    print(f"{'T_RH':>8} {'p':>12} {'refreshes per 1M ACTs':>24}")
    for trh in (139_000, 32_000, 4_800, 1_000, 500, 125):
        p = para_probability(trh)
        print(f"{trh:>8} {p:>12.6f} {p * 1e6:>24,.0f}")
    print(
        "\nAt DDR3-era thresholds PARA was nearly free; at T_RH=125 it "
        "refreshes neighbours every ~4-5 activations.\n"
    )


def tracking_insecurity() -> None:
    config = HydraConfig().scaled(1 / 32)
    geometry = config.geometry
    th = config.th

    print("=== Probabilistic tracking vs the Theorem-1 oracle ===")
    single = attacks.single_sided(5, th + 25)
    many = attacks.many_sided(list(range(100, 164)), th + 10)

    broken_seed = None
    for seed in range(60):
        tracker = MrlocTracker(base_probability=0.002, seed=seed)
        report = verify_tracker(tracker, geometry, single, th)
        if not report.secure:
            broken_seed = seed
            violation = report.violations[0]
            break
    assert broken_seed is not None
    print(
        f"MRLOC   : VIOLATED (seed {broken_seed}) — row "
        f"{violation.row} reached {violation.true_count} unmitigated "
        f"activations (bound {th})"
    )

    broken_seed = None
    for seed in range(60):
        tracker = ProhitTracker(seed=seed)
        report = verify_tracker(tracker, geometry, many, th)
        if not report.secure:
            broken_seed = seed
            break
    assert broken_seed is not None
    print(f"ProHIT  : VIOLATED (seed {broken_seed}) — an aggressor was "
          "never sampled before crossing the threshold")

    report = verify_tracker(
        HydraTracker(config), geometry, single + many, th
    )
    print(
        f"Hydra   : {'SECURE' if report.secure else 'VIOLATED'} — "
        f"max unmitigated {report.max_unmitigated_count}/{th} over "
        f"{report.activations} activations"
    )
    print(
        "\nHydra's guarantee is structural (GCT overcounts, RCT is "
        "per-row exact), not statistical — no seed hunting can break it."
    )


def main() -> None:
    para_scaling()
    tracking_insecurity()


if __name__ == "__main__":
    main()
