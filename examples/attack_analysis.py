#!/usr/bin/env python3
"""Security analysis: Hydra versus the paper's adaptive attacks (§5).

Verifies Theorem-1 (mitigation at or before every T_H activations)
against every attack pattern the paper discusses — single/double/
many-sided, Half-Double, tracker thrashing, RCC thrashing, and
hammering the RCT's own DRAM rows — and contrasts Hydra with an
under-provisioned TRR-style tracker that thrashing defeats.

Run:  python examples/attack_analysis.py
"""

from repro.analysis.security import verify_tracker
from repro.core import HydraConfig, HydraTracker
from repro.trackers.graphene import GrapheneTracker
from repro.workloads import attacks


def main() -> None:
    config = HydraConfig().scaled(1 / 32)
    geometry = config.geometry
    th = config.th

    patterns = {
        "single-sided": attacks.single_sided(1000, 30 * th),
        "double-sided": attacks.double_sided(2000, 15 * th),
        "many-sided (TRRespass)": attacks.many_sided(
            list(range(3000, 3064)), 3 * th
        ),
        "half-double": attacks.half_double(4000, 30 * th),
        "thrash-then-hammer": attacks.thrash_then_hammer(
            5000, list(range(6000, 6512)), 6 * th, interleave=8
        ),
        "rcc-thrash": attacks.rcc_thrash(geometry, 2000, 20),
        "rct-region hammer": attacks.rct_region_attack(geometry, 15 * th),
    }

    print("=== Hydra under adaptive attacks (Theorem-1 oracle check) ===")
    print(f"{'pattern':<24} {'status':<9} {'ACTs':>8} {'mitigations':>12} "
          f"{'max unmitigated':>16}")
    for name, sequence in patterns.items():
        tracker = HydraTracker(config)
        report = verify_tracker(tracker, geometry, sequence, th)
        status = "SECURE" if report.secure else "VIOLATED"
        print(
            f"{name:<24} {status:<9} {report.activations:>8} "
            f"{report.mitigations:>12} "
            f"{report.max_unmitigated_count:>12}/{th}"
        )

    # Contrast: a TRR-style tracker with a handful of entries, the
    # design TRRespass broke. Space-Saving inheritance makes even tiny
    # tables conservative, so we also show the mitigation *blow-up*
    # that under-provisioning causes instead.
    print("\n=== Why sizing matters: 4-entry TRR-style table ===")
    seq = attacks.thrash_then_hammer(
        5, list(range(512, 612)), 4 * th, interleave=1
    )
    tiny = GrapheneTracker(geometry, trh=config.trh, entries_per_bank=4)
    report = verify_tracker(tiny, geometry, seq, th)
    print(
        f"4-entry table: secure={report.secure}, "
        f"mitigations={report.mitigations} "
        f"(over-mitigates {report.mitigations / max(1, report.activations // th):.0f}x "
        "the necessary rate — count inheritance saves security by "
        "burning bandwidth)"
    )
    sized = GrapheneTracker(geometry, trh=config.trh)
    report_sized = verify_tracker(sized, geometry, seq, th)
    print(
        f"properly sized ({sized.entries_per_bank}/bank): "
        f"secure={report_sized.secure}, mitigations={report_sized.mitigations}"
    )
    print("\nHydra needs neither: the RCT gives every row a counter, so "
          "thrashing its SRAM only costs performance, never security (§5.3).")


if __name__ == "__main__":
    main()
