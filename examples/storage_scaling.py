#!/usr/bin/env python3
"""Storage scaling study: why SRAM trackers break at ultra-low T_RH.

Regenerates Table 1 (per-rank storage of prior trackers), Table 4
(Hydra's breakdown), and Table 5 (whole-system totals, DDR4 vs DDR5),
and sweeps the threshold to show the inverse-scaling wall the paper's
introduction describes.

Run:  python examples/storage_scaling.py
"""

from repro.core import HydraConfig, hydra_storage
from repro.trackers.storage import (
    SCHEME_MODELS,
    hydra_bytes_total,
    storage_table,
    total_sram_table,
)

KIB = 1024


def bar(value_bytes: float, per_kib: float = 64.0, width: int = 40) -> str:
    cells = min(width, int(value_bytes / KIB / per_kib))
    return "#" * cells + ("+" if value_bytes / KIB > per_kib * width else "")


def main() -> None:
    print("=== Table 1: per-rank SRAM storage (KB), 16 GB rank ===")
    rows = storage_table()
    schemes = list(rows[0].bytes_by_scheme)
    print(f"{'T_RH':<8}" + "".join(f"{s:>10}" for s in schemes))
    for row in rows:
        print(
            f"{row.trh:<8}"
            + "".join(f"{row.bytes_by_scheme[s] / KIB:>10.0f}" for s in schemes)
        )
    print("Goal (paper): <= 64 KB per rank at every threshold.\n")

    print("=== The scaling wall (Graphene storage vs threshold) ===")
    for trh in (32000, 8000, 2000, 1000, 500, 250, 125):
        size = SCHEME_MODELS["Graphene"](trh)
        print(f"T_RH={trh:<7} {size / KIB:>8.0f} KB  {bar(size)}")
    print()

    print("=== Table 4: Hydra breakdown (32 GB system) ===")
    for name, value in hydra_storage(HydraConfig()).rows().items():
        print(f"  {name:<8} {value}")
    print()

    print("=== Table 5: whole-system SRAM (KB), DDR4 vs DDR5 ===")
    table = total_sram_table()
    print(f"{'scheme':<12} {'DDR4':>10} {'DDR5':>10}")
    for scheme, cols in table.items():
        print(
            f"{scheme:<12} {cols['ddr4'] / KIB:>10.1f} "
            f"{cols['ddr5'] / KIB:>10.1f}"
        )
    print()

    print("=== Hydra across thresholds (structures scaled as Figure 7) ===")
    for trh in (500, 250, 125):
        print(f"T_RH={trh:<5} -> {hydra_bytes_total(trh) / KIB:>7.1f} KB")
    print(
        "\nEven 4x-scaled Hydra at T_RH=125 stays far below any prior "
        "tracker at T_RH=500."
    )


if __name__ == "__main__":
    main()
