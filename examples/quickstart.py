#!/usr/bin/env python3
"""Quickstart: track a RowHammer attack with Hydra.

Builds the paper's default Hydra design point (T_RH = 500, 32K-entry
GCT, 8K-entry RCC) on a scaled memory system, feeds it a double-sided
attack mixed with benign background traffic, and shows the three
tracking paths and the mitigations that protect the victim row.

Run:  python examples/quickstart.py
"""

import random

from repro import HydraConfig, HydraTracker, hydra_storage
from repro.dram.timing import PAPER_GEOMETRY


def main() -> None:
    # A 1/32-scale system: same thresholds, same 128-row groups, same
    # structure ratios as the paper's 32 GB machine (DESIGN.md §3).
    config = HydraConfig().scaled(1 / 32)
    tracker = HydraTracker(config)

    print("Hydra design point")
    print(f"  T_RH = {config.trh}, T_H = {config.th}, T_G = {config.tg}")
    print(f"  GCT entries = {config.gct_entries} "
          f"(row-groups of {config.group_size} rows)")
    print(f"  RCC entries = {config.rcc_entries}, {config.rcc_ways}-way")
    full_scale = hydra_storage(HydraConfig(geometry=PAPER_GEOMETRY))
    print(f"  full-scale SRAM cost: {full_scale.rows()['Total']} (Table 4)\n")

    # A double-sided attack on the rows around victim 5000, hiding in
    # benign traffic touching thousands of other rows.
    rng = random.Random(7)
    victim = 5000
    aggressors = (victim - 1, victim + 1)
    mitigations = []
    window_activations = 50_000  # ~one 64 ms window of this traffic

    for step in range(200_000):
        if step % window_activations == 0 and step:
            tracker.on_window_reset()  # the periodic reset (§4.6)
        if step % 4 == 0:  # every 4th access hammers
            row = aggressors[step % 2]
        else:
            row = rng.randrange(0, config.geometry.total_rows)
        response = tracker.on_activation(row)
        if response and response.mitigate_rows:
            mitigations.append((step, response.mitigate_rows))

    stats = tracker.stats
    dist = stats.distribution()
    print("After 200,000 activations:")
    print(f"  GCT-only updates : {100 * dist['gct_only']:6.2f}%")
    print(f"  RCC hits         : {100 * dist['rcc_hit']:6.2f}%")
    print(f"  RCT (DRAM)       : {100 * dist['rct_access']:6.2f}%")
    print(f"  group inits      : {stats.group_inits}")
    print(f"  mitigations      : {stats.mitigations}\n")

    hammer_mitigations = [
        m for m in mitigations if set(m[1]) & set(aggressors)
    ]
    print(f"Mitigations on the attacking rows: {len(hammer_mitigations)}")
    first = hammer_mitigations[0]
    print(f"  first at activation #{first[0]} -> victim refresh around "
          f"rows {first[1]}")
    print("\nEvery aggressor was mitigated at or before "
          f"T_H = {config.th} of its activations (Theorem-1).")


if __name__ == "__main__":
    main()
